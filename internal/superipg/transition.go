package superipg

import "fmt"

// This file provides the arrangement transitions used by ascend/descend
// algorithms (Section 3.2 of the paper): the super-generator words that move
// the front of the label from one group to the next without a full
// restore-to-identity in between.  Using these transitions, an ascend pass
// costs l-1 transitions plus one final restore on a CN (t_r = l) and
// 2(l-1) super steps on an HSN/SFN (t_r = 2l-2), reproducing the step
// counts of Corollaries 3.6 and 3.7.
//
// Invariant: outside a transition the arrangement is always canonical for
// the current front group f — identity for f = 1, the arrangement produced
// by BringToFront(f) from identity otherwise.  TransitionWord moves between
// canonical arrangements; FinalWord returns to identity.

type familyKind int

const (
	kindSwap   familyKind = iota // HSN, SFN, RCC, HCN: involutive bring words
	kindRotate                   // ring-CN, complete-CN, directed-CN: rotations
)

func (w *Network) kind() familyKind {
	switch w.Family {
	case "ring-CN", "complete-CN", "directed-CN":
		return kindRotate
	default:
		return kindSwap
	}
}

// TransitionWord returns the super-generator word moving the canonical
// arrangement with front group `from` to the canonical arrangement with
// front group `to` (both 1-based).
func (w *Network) TransitionWord(from, to int) []int {
	if from < 1 || from > w.L || to < 1 || to > w.L {
		panic(fmt.Sprintf("superipg: TransitionWord(%d,%d) out of range 1..%d", from, to, w.L))
	}
	if from == to {
		return nil
	}
	switch w.kind() {
	case kindSwap:
		var word []int
		if from != 1 {
			word = append(word, w.RestoreFromFront(from)...)
		}
		if to != 1 {
			word = append(word, w.BringToFront(to)...)
		}
		return word
	default: // kindRotate
		return w.rotationWord((to - from + w.L) % w.L)
	}
}

// FinalWord returns the word restoring the canonical arrangement with front
// group f to the identity arrangement.
func (w *Network) FinalWord(f int) []int {
	return w.TransitionWord(f, 1)
}

// rotationWord returns a word rotating the groups left by delta (mod l),
// using the shortest available rotations of the family.
func (w *Network) rotationWord(delta int) []int {
	delta = ((delta % w.L) + w.L) % w.L
	if delta == 0 {
		return nil
	}
	switch w.Family {
	case "complete-CN":
		// L_delta in one step: super generator index delta-1.
		return []int{w.nNuc + delta - 1}
	case "ring-CN":
		li, ri := w.nNuc, w.nNuc+1
		if delta <= w.L-delta {
			return repeat(li, delta)
		}
		return repeat(ri, w.L-delta)
	case "directed-CN":
		return repeat(w.nNuc, delta)
	}
	panic("superipg: rotationWord on non-rotation family")
}
