package superipg

import "fmt"

// This file computes the quantities t and t_S of Theorems 4.1 and 4.3 by
// breadth-first search over the group-arrangement state space.
//
// State: (arrangement, visited) where arrangement is the permutation of the
// l super-symbol groups induced by the super-generator word applied so far
// (arrangement[pos] = original group currently at position pos) and visited
// is the set of original groups that have occupied the leftmost position at
// some prefix of the word (group 1 counts as visited at the start).
//
//   - Theorem 4.1: t = the minimum word length after which visited is full.
//     The intercluster diameter of the (plain) super-IPG equals t, because a
//     route can rewrite a group's content only while it sits in the leftmost
//     cluster position, on-chip moves are free, and each super-generator
//     application is exactly one intercluster transmission.
//
//   - Theorem 4.3: t_S = the maximum over reachable arrangements sigma of
//     the minimum word length reaching (sigma, full): each group must visit
//     the front at least once and then the groups must be rearranged to any
//     required order.  This is the intercluster diameter of the symmetric
//     variant of the super-IPG.

type arrState struct {
	arr     string // arrangement as bytes: arr[pos] = original group at pos
	visited uint32 // bitmask of groups that have been at position 0
}

// superBFS explores the arrangement state space and returns the distance
// map.  It is shared by InterclusterT and SymmetricTS.
func (w *Network) superBFS() map[arrState]int {
	l := w.L
	if l > 20 {
		panic("superipg: arrangement BFS limited to l <= 20")
	}
	start := make([]byte, l)
	for i := range start {
		start[i] = byte(i)
	}
	s0 := arrState{arr: string(start), visited: 1}
	dist := map[arrState]int{s0: 0}
	queue := []arrState{s0}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		d := dist[s]
		for _, act := range w.superActs {
			next := make([]byte, l)
			for pos := 0; pos < l; pos++ {
				next[pos] = s.arr[act[pos]]
			}
			ns := arrState{arr: string(next), visited: s.visited | 1<<uint(next[0])}
			if _, ok := dist[ns]; !ok {
				dist[ns] = d + 1
				queue = append(queue, ns)
			}
		}
	}
	return dist
}

// InterclusterT returns t of Theorem 4.1: the minimum number of
// super-generator applications for every super-symbol to appear at the
// leftmost position at least once.  It returns an error if no word achieves
// this (a malformed family whose super-generators cannot bring some group
// to the front).
func (w *Network) InterclusterT() (int, error) {
	full := uint32(1)<<uint(w.L) - 1
	dist := w.superBFS()
	best := -1
	for s, d := range dist {
		if s.visited == full && (best < 0 || d < best) {
			best = d
		}
	}
	if best < 0 {
		return 0, fmt.Errorf("superipg: %s super-generators cannot bring every group to the front", w.Name())
	}
	return best, nil
}

// SymmetricTS returns t_S of Theorem 4.3: the maximum over reachable final
// arrangements of the minimum number of super-generator applications that
// visits every group at the front and ends in that arrangement.
func (w *Network) SymmetricTS() (int, error) {
	full := uint32(1)<<uint(w.L) - 1
	dist := w.superBFS()
	// For each reachable arrangement find the min distance with full
	// visited; t_S is the max over arrangements.
	byArr := make(map[string]int)
	reachable := make(map[string]bool)
	for s, d := range dist {
		reachable[s.arr] = true
		if s.visited != full {
			continue
		}
		if cur, ok := byArr[s.arr]; !ok || d < cur {
			byArr[s.arr] = d
		}
	}
	if len(byArr) == 0 {
		return 0, fmt.Errorf("superipg: %s super-generators cannot bring every group to the front", w.Name())
	}
	best := 0
	for arr := range reachable {
		d, ok := byArr[arr]
		if !ok {
			return 0, fmt.Errorf("superipg: %s arrangement %q reachable but never with all groups visited", w.Name(), arr)
		}
		if d > best {
			best = d
		}
	}
	return best, nil
}

// TheoreticalInterclusterDiameter returns the closed-form intercluster
// diameter l-1 = log_M N - 1 of Corollary 4.2, which applies to HSN, RHSN,
// RCC, CN, directed CN, and SFN.
func (w *Network) TheoreticalInterclusterDiameter() int { return w.L - 1 }

// TheoreticalSymmetricDiameter returns the closed-form t_S of Corollary
// 4.4 for the families it covers, or -1 if the corollary gives no formula
// for this family.
func (w *Network) TheoreticalSymmetricDiameter() int {
	switch w.Family {
	case "complete-CN":
		return w.L
	case "HSN", "SFN", "RCC", "HCN", "RHSN", "HFN":
		return 2*w.L - 2
	case "ring-CN":
		switch w.L {
		case 2:
			return 2
		case 3:
			return 3
		default:
			return 3*w.L/2 - 2
		}
	}
	return -1
}
