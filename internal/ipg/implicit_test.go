package ipg

import (
	"math/rand"
	"sort"
	"testing"

	"ipg/internal/perm"
	"ipg/internal/topo"
)

// adjacentTranspositions is the bubble-sort generator set on n positions;
// it generates the full symmetric group, so the orbit of any seed is all
// arrangements of its multiset — the precondition of NewImplicit.
func adjacentTranspositions(n int) perm.GenSet {
	gens := perm.GenSet{}
	for i := 0; i+1 < n; i++ {
		gens = append(gens, perm.Gen("t", perm.Transposition(n, i, i+1)))
	}
	return gens
}

// TestImplicitMatchesBuild checks the Lehmer-coded implicit adjacency
// against the materialized closure, row by row under the rank relabeling,
// for both a distinct-symbol (Cayley) and a repeated-symbol seed.
func TestImplicitMatchesBuild(t *testing.T) {
	specs := []Spec{
		{Name: "bubble4", Seed: perm.MustParseLabel("1234"), Gens: adjacentTranspositions(4)},
		{Name: "bubble-122331", Seed: perm.MustParseLabel("122331"), Gens: adjacentTranspositions(6)},
	}
	for _, spec := range specs {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			g := MustBuild(spec)
			c := g.Undirected().CSR()
			im, err := NewImplicit(spec)
			if err != nil {
				t.Fatal(err)
			}
			if im.N() != c.N() {
				t.Fatalf("implicit N = %d, materialized N = %d", im.N(), c.N())
			}
			lc, err := perm.NewLabelCodec(spec.Seed)
			if err != nil {
				t.Fatal(err)
			}
			pi := make([]int32, c.N())
			for v := range pi {
				r, err := lc.Rank(g.Label(v))
				if err != nil {
					t.Fatalf("Rank(%v): %v", g.Label(v), err)
				}
				pi[v] = int32(r)
			}
			var cbuf, ibuf, mapped []int32
			for v := 0; v < c.N(); v++ {
				cbuf = c.NeighborsInto(v, cbuf)
				mapped = mapped[:0]
				for _, u := range cbuf {
					mapped = append(mapped, pi[u])
				}
				sort.Slice(mapped, func(i, j int) bool { return mapped[i] < mapped[j] })
				ibuf = im.NeighborsInto(int(pi[v]), ibuf)
				if len(ibuf) != len(mapped) {
					t.Fatalf("v=%d: implicit degree %d, materialized %d", v, len(ibuf), len(mapped))
				}
				for i := range ibuf {
					if ibuf[i] != mapped[i] {
						t.Fatalf("v=%d: implicit row %v, relabeled row %v", v, ibuf, mapped)
					}
				}
			}
		})
	}
}

// TestImplicitBeyondMaterializable samples the bubble-sort Cayley graph
// on 12 symbols — 12! ≈ 4.8e8 vertices, far past any materialization cap
// — and checks the canonical row contract and adjacency symmetry at
// random ranks.  The generators are involutions, so every edge the codec
// emits must be seen from both ends.
func TestImplicitBeyondMaterializable(t *testing.T) {
	spec := Spec{
		Name: "bubble12",
		Seed: perm.MustParseLabel("0123456789ab"),
		Gens: adjacentTranspositions(12),
	}
	im, err := NewImplicit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if im.N() != 479001600 {
		t.Fatalf("N = %d, want 12!", im.N())
	}
	if !topo.SourceTransitive(im) {
		t.Fatal("distinct-seed IPG should be marked vertex-transitive")
	}
	rng := rand.New(rand.NewSource(3))
	var row, nrow []int32
	for trial := 0; trial < 64; trial++ {
		v := rng.Intn(im.N())
		row = im.NeighborsInto(v, row)
		if len(row) != 11 {
			t.Fatalf("v=%d: degree %d, want 11", v, len(row))
		}
		for i, u := range row {
			if int(u) == v || (i > 0 && row[i-1] >= u) {
				t.Fatalf("v=%d: row %v not canonical", v, row)
			}
		}
		for _, u := range row {
			nrow = im.NeighborsInto(int(u), nrow)
			j := sort.Search(len(nrow), func(i int) bool { return nrow[i] >= int32(v) })
			if j == len(nrow) || nrow[j] != int32(v) {
				t.Fatalf("asymmetric edge %d -> %d", v, u)
			}
		}
	}
}
