package ipg

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ipg/internal/perm"
)

// section2Spec is the worked IPG example from Section 2 of the paper:
// seed 123321 with generators 213456, 321456, 456123 yields 36 nodes.
func section2Spec() Spec {
	return Spec{
		Name: "paper-sec2",
		Seed: perm.MustParseLabel("123321"),
		Gens: perm.GenSet{
			perm.Gen("p1", perm.FromImage(2, 1, 3, 4, 5, 6)),
			perm.Gen("p2", perm.FromImage(3, 2, 1, 4, 5, 6)),
			perm.Gen("p3", perm.FromImage(4, 5, 6, 1, 2, 3)),
		},
	}
}

func TestSection2Example(t *testing.T) {
	g := MustBuild(section2Spec())
	if g.N() != 36 {
		t.Fatalf("paper example: %d nodes, want 36", g.N())
	}
	// The three listed neighbors of the seed.
	seed := g.SeedID()
	wantNbrs := []string{"213321", "321321", "321123"}
	for gi, want := range wantNbrs {
		nb := g.Neighbor(seed, gi)
		if got := g.Label(nb).String(); got != want {
			t.Errorf("generator %d neighbor = %s, want %s", gi, got, want)
		}
	}
	// Generators here are involutions, so the graph is undirected.  It is
	// not regular: labels fixed by a generator (e.g. 321321 under the
	// half-swap 456123) lose that edge to a self-loop.
	u := g.Undirected()
	if !u.Connected() {
		t.Error("IPG should be connected by construction")
	}
	if _, max, _ := u.DegreeStats(); max != 3 {
		t.Errorf("max degree = %d, want 3", max)
	}
	if !g.Gens[2].P.Fixes(perm.MustParseLabel("321321")) {
		t.Error("456123 should fix 321321")
	}
}

func TestCayleySpecialCase(t *testing.T) {
	// With all-distinct seed symbols, the IPG on transpositions (1,i) is
	// the star graph S_n: n! nodes, (n-1)-regular, a classic Cayley graph.
	n := 4
	gens := perm.GenSet{}
	for i := 2; i <= n; i++ {
		gens = append(gens, perm.Gen("t", perm.Transposition(n, 0, i-1)))
	}
	g := MustBuild(Spec{Name: "star4", Seed: perm.MustParseLabel("1234"), Gens: gens})
	if g.N() != 24 {
		t.Fatalf("S4 nodes = %d, want 24", g.N())
	}
	u := g.Undirected()
	if reg, d := u.IsRegular(); !reg || d != 3 {
		t.Errorf("S4 should be 3-regular, got %v,%d", reg, d)
	}
	if diam := u.Diameter(); diam != 4 {
		t.Errorf("S4 diameter = %d, want 4", diam)
	}
}

func TestRepeatedSymbolsShrinkGraph(t *testing.T) {
	// Same generators as star graph S3 but seed with repeats: fewer nodes.
	gens := perm.GenSet{
		perm.Gen("t2", perm.Transposition(3, 0, 1)),
		perm.Gen("t3", perm.Transposition(3, 0, 2)),
	}
	distinct := MustBuild(Spec{Name: "s3", Seed: perm.MustParseLabel("123"), Gens: gens})
	repeated := MustBuild(Spec{Name: "s3r", Seed: perm.MustParseLabel("122"), Gens: gens})
	if distinct.N() != 6 {
		t.Errorf("distinct seed: %d nodes, want 6", distinct.N())
	}
	if repeated.N() != 3 {
		t.Errorf("repeated seed: %d nodes, want 3", repeated.N())
	}
}

func TestSelfLoops(t *testing.T) {
	// Seed 11 with the swap generator: single node, all actions loops.
	g := MustBuild(Spec{
		Name: "loop",
		Seed: perm.MustParseLabel("11"),
		Gens: perm.GenSet{perm.Gen("t", perm.Transposition(2, 0, 1))},
	})
	if g.N() != 1 || g.SelfLoopCount() != 1 || g.EffectiveDegree(0) != 0 {
		t.Errorf("loop graph: n=%d loops=%d deg=%d", g.N(), g.SelfLoopCount(), g.EffectiveDegree(0))
	}
	if !g.IsLoop(0, 0) {
		t.Error("IsLoop should be true")
	}
}

func TestWalkAndApplyWordAgree(t *testing.T) {
	g := MustBuild(section2Spec())
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		v := r.Intn(g.N())
		word := make([]int, r.Intn(8))
		for i := range word {
			word[i] = r.Intn(g.NumGens())
		}
		end := g.WalkWord(v, word)
		lbl := g.ApplyWord(g.Label(v), word)
		if got := g.NodeID(lbl); got != end {
			t.Fatalf("WalkWord=%d but ApplyWord lands on %d (label %v)", end, got, lbl)
		}
	}
}

func TestNodeID(t *testing.T) {
	g := MustBuild(section2Spec())
	if g.NodeID(perm.MustParseLabel("123321")) != 0 {
		t.Error("seed should be node 0")
	}
	if g.NodeID(perm.MustParseLabel("111111")) != -1 {
		t.Error("unreachable label should return -1")
	}
}

func TestGeneratorEdgeCount(t *testing.T) {
	g := MustBuild(section2Spec())
	counts := g.GeneratorEdgeCount()
	totalLoops := 0
	for gi, c := range counts {
		// Directed edges plus fixed labels must account for every node.
		fixed := 0
		for v := 0; v < g.N(); v++ {
			if g.Gens[gi].P.Fixes(g.Label(v)) {
				fixed++
			}
		}
		if c+fixed != g.N() {
			t.Errorf("generator %d: %d edges + %d fixed != %d nodes", gi, c, fixed, g.N())
		}
		totalLoops += fixed
	}
	if g.SelfLoopCount() != totalLoops {
		t.Errorf("SelfLoopCount = %d, want %d", g.SelfLoopCount(), totalLoops)
	}
	// The half-swap generator fixes exactly the 6 labels of the form WW.
	if want := g.N() - 6; counts[2] != want {
		t.Errorf("half-swap generator contributes %d edges, want %d", counts[2], want)
	}
}

func TestClustersBy(t *testing.T) {
	g := MustBuild(section2Spec())
	// Cluster on the last 3 symbols: nucleus-like grouping.
	clusterOf, nc := g.ClustersBy(func(l perm.Label) string { return string(l[3:]) })
	if nc <= 1 || nc >= g.N() {
		t.Fatalf("implausible cluster count %d", nc)
	}
	// Nodes in the same cluster share suffixes.
	for v := 0; v < g.N(); v++ {
		for w := v + 1; w < g.N(); w++ {
			same := clusterOf[v] == clusterOf[w]
			suffixEq := g.Label(v)[3:].Equal(g.Label(w)[3:])
			if same != suffixEq {
				t.Fatalf("cluster/suffix mismatch at %d,%d", v, w)
			}
		}
	}
}

func TestValidateErrors(t *testing.T) {
	bad := Spec{
		Name: "bad",
		Seed: perm.MustParseLabel("123"),
		Gens: perm.GenSet{perm.Gen("g", perm.Identity(4))},
	}
	if _, err := Build(bad); err == nil {
		t.Error("size-mismatched spec should fail")
	}
	if _, err := Build(Spec{Name: "empty", Seed: perm.MustParseLabel("1")}); err == nil {
		t.Error("empty generator set should fail")
	}
}

func TestQuickClosureInvariants(t *testing.T) {
	// Property: for random small generator sets, every node's every
	// neighbor is a valid node, and edge relation v--g-->w implies
	// w--g^-1-->v when the inverse generator is present.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 4 + r.Intn(3)
		p := perm.Random(r, n)
		gens := perm.GenSet{perm.Gen("p", p), perm.Gen("p'", p.Inverse())}
		lbl := make(perm.Label, n)
		for i := range lbl {
			lbl[i] = byte(r.Intn(3))
		}
		g, err := Build(Spec{Name: "rand", Seed: lbl, Gens: gens})
		if err != nil {
			return false
		}
		for v := 0; v < g.N(); v++ {
			w := g.Neighbor(v, 0)
			if g.Neighbor(w, 1) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
