// Package ipg implements the index-permutation graph (IPG) model of Yeh &
// Parhami: a graph defined by a seed label (a symbol string, possibly with
// repeated symbols) and a set of permutation generators.  The vertices are
// all labels reachable from the seed by generator applications; the edges
// are the generator actions.
//
// Cayley graphs are the special case where the seed has all-distinct
// symbols; allowing repeats is exactly the extension that yields
// super-IPGs, hierarchical swap networks, cyclic networks, and the other
// families studied in the paper.
package ipg

import (
	"fmt"

	"ipg/internal/graph"
	"ipg/internal/perm"
)

// Spec defines an IPG before materialization.
type Spec struct {
	Name string
	Seed perm.Label
	Gens perm.GenSet
}

// Validate checks that the generators are valid permutations acting on
// labels of the seed's length.
func (s Spec) Validate() error {
	if err := s.Gens.Validate(); err != nil {
		return err
	}
	if s.Gens[0].P.Size() != len(s.Seed) {
		return fmt.Errorf("ipg: generators act on %d positions but seed has %d symbols",
			s.Gens[0].P.Size(), len(s.Seed))
	}
	return nil
}

// Graph is a materialized IPG: the closure of the seed under the
// generators, with per-generator adjacency.  It satisfies topo.Ported —
// port gi of node v is the node reached by generator gi (possibly v
// itself: a self-loop, which is not a link in the physical network).
type Graph struct {
	Spec
	nodes []perm.Label
	index map[string]int32
	// adj holds the per-generator adjacency in one flat array: the node
	// reached from v by generator gi is adj[v*len(Gens)+gi].
	adj []int32
}

// MaxNodes caps IPG materialization as a guard against runaway closures
// (e.g. a mistaken generator set generating a huge permutation group).
const MaxNodes = 1 << 22

// Build materializes the IPG defined by spec via breadth-first closure.
func Build(spec Spec) (*Graph, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	g := &Graph{
		Spec:  spec,
		index: make(map[string]int32),
	}
	g.addNode(spec.Seed.Clone())
	scratch := make(perm.Label, len(spec.Seed))
	for head := 0; head < len(g.nodes); head++ {
		cur := g.nodes[head]
		for _, gen := range spec.Gens {
			gen.P.ApplyInto(scratch, cur)
			key := string(scratch)
			id, ok := g.index[key]
			if !ok {
				if len(g.nodes) >= MaxNodes {
					return nil, fmt.Errorf("ipg: %s exceeds MaxNodes=%d", spec.Name, MaxNodes)
				}
				id = g.addNode(scratch.Clone())
			}
			g.adj = append(g.adj, id)
		}
	}
	return g, nil
}

// MustBuild is Build that panics on error.
func MustBuild(spec Spec) *Graph {
	g, err := Build(spec)
	if err != nil {
		panic(err)
	}
	return g
}

func (g *Graph) addNode(l perm.Label) int32 {
	//lint:ignore indextrunc Build caps len(g.nodes) at MaxNodes (1<<22) before growing
	id := int32(len(g.nodes))
	g.nodes = append(g.nodes, l)
	g.index[string(l)] = id
	return id
}

// MemoryFootprint approximates the materialized IPG's resident bytes: the
// flat per-generator adjacency, the label storage, and the label index
// (one string key copy plus ~48 bytes of bucket overhead per entry).
// The serving cache (internal/serve) charges artifacts against its byte
// budget with this accounting, alongside graph.Graph.MemoryFootprint for
// the CSR side.
func (g *Graph) MemoryFootprint() int64 {
	bytes := int64(len(g.adj)) * 4
	for _, l := range g.nodes {
		bytes += int64(len(l))*2 + 24 + 48
	}
	return bytes
}

// row returns v's generator-indexed neighbor row as a view into the flat
// adjacency.
func (g *Graph) row(v int) []int32 {
	ng := len(g.Gens)
	return g.adj[v*ng : (v+1)*ng]
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.nodes) }

// NumGens returns the number of generators (the directed out-degree
// including self-loops).
func (g *Graph) NumGens() int { return len(g.Gens) }

// Arity returns the number of ports at every node: one per generator.  It
// is part of the topo.Ported contract.
func (g *Graph) Arity(v int) int { return len(g.Gens) }

// Port returns the node behind port p of v: the node reached by generator
// p.  A self-loop returns v itself — Ported consumers treat a port whose
// target equals the node (or is negative) as carrying no traffic.
func (g *Graph) Port(v, p int) int32 { return g.adj[v*len(g.Gens)+p] }

// Label returns the label of node v.  The returned slice is owned by the
// graph.
func (g *Graph) Label(v int) perm.Label { return g.nodes[v] }

// NodeID returns the node with the given label, or -1.
func (g *Graph) NodeID(l perm.Label) int {
	if id, ok := g.index[string(l)]; ok {
		return int(id)
	}
	return -1
}

// Seed returns the node id of the seed label (always 0).
func (g *Graph) SeedID() int { return 0 }

// Neighbor returns the node reached from v by generator gi.  The result
// equals v when the generator fixes v's label (self-loop).
func (g *Graph) Neighbor(v, gi int) int { return int(g.adj[v*len(g.Gens)+gi]) }

// IsLoop reports whether generator gi is a self-loop at v.
func (g *Graph) IsLoop(v, gi int) bool { return int(g.adj[v*len(g.Gens)+gi]) == v }

// EffectiveDegree returns the number of distinct non-self neighbors of v.
func (g *Graph) EffectiveDegree(v int) int {
	row := g.row(v)
	seen := make(map[int32]bool, len(row))
	for _, w := range row {
		if int(w) != v {
			seen[w] = true
		}
	}
	return len(seen)
}

// Undirected collapses the IPG into a simple undirected graph (self-loops
// dropped, parallel edges merged), streaming the generator arcs straight
// into the CSR arena.  For inverse-closed generator sets this loses no
// connectivity information.
func (g *Graph) Undirected() *graph.Graph {
	return graph.FromStream(g.N(), func(edge func(u, v int)) {
		ng := len(g.Gens)
		//lint:ignore ctxflow the arc stream is bounded by MaxNodes (1<<22, enforced in New) times the generator count and runs once per artifact under serve's build timeout
		for v := 0; v < g.N(); v++ {
			for _, w := range g.adj[v*ng : (v+1)*ng] {
				if int(w) != v {
					edge(v, int(w))
				}
			}
		}
	})
}

// ApplyWord applies the generator sequence word (generator indices) to the
// label x and returns the resulting label.
func (g *Graph) ApplyWord(x perm.Label, word []int) perm.Label {
	cur := x.Clone()
	next := make(perm.Label, len(x))
	for _, gi := range word {
		g.Gens[gi].P.ApplyInto(next, cur)
		cur, next = next, cur
	}
	return cur
}

// WalkWord follows the generator sequence from node v, returning the final
// node id.
func (g *Graph) WalkWord(v int, word []int) int {
	for _, gi := range word {
		v = int(g.adj[v*len(g.Gens)+gi])
	}
	return v
}

// GeneratorEdgeCount returns, for each generator, the number of non-loop
// directed edges it contributes.
func (g *Graph) GeneratorEdgeCount() []int {
	ng := len(g.Gens)
	counts := make([]int, ng)
	for v := 0; v < g.N(); v++ {
		for gi, w := range g.adj[v*ng : (v+1)*ng] {
			if int(w) != v {
				counts[gi]++
			}
		}
	}
	return counts
}

// SelfLoopCount returns the total number of (node, generator) pairs where
// the generator fixes the node.
func (g *Graph) SelfLoopCount() int {
	ng := len(g.Gens)
	loops := 0
	for v := 0; v < g.N(); v++ {
		for _, w := range g.adj[v*ng : (v+1)*ng] {
			if int(w) == v {
				loops++
			}
		}
	}
	return loops
}

// ClustersBy partitions nodes by an arbitrary key of their label and
// returns (clusterOf, clusterCount).  Super-IPG packages use the suffix
// beyond the first group as the key, making each cluster one nucleus copy.
func (g *Graph) ClustersBy(key func(perm.Label) string) ([]int32, int) {
	clusterOf := make([]int32, g.N())
	idx := make(map[string]int32)
	for v, l := range g.nodes {
		k := key(l)
		id, ok := idx[k]
		if !ok {
			//lint:ignore indextrunc len(idx) <= g.N() <= MaxNodes (1<<22)
			id = int32(len(idx))
			idx[k] = id
		}
		clusterOf[v] = id
	}
	return clusterOf, len(idx)
}
