package ipg

import (
	"fmt"
	"sync"

	"ipg/internal/perm"
	"ipg/internal/topo"
)

// This file implements the implicit adjacency of an IPG whose node set is
// the full arrangement set of its seed multiset: vertex v is the
// Lehmer-code rank of its label (perm.LabelCodec, lexicographic), and
// neighbors are computed by unrank -> apply generator -> rank, with no
// materialized closure.
//
// PRECONDITION: the generator orbit of the seed must be ALL arrangements
// of the seed's symbol multiset (true for Cayley families whose
// generators generate the symmetric group — star graphs, pancake graphs,
// complete-graph rotations — and for the super-IPG constructions, which
// have their own address codec in internal/superipg).  NewImplicit cannot
// verify the orbit without materializing; callers for whom the property
// is not a theorem should cross-check against Build on a small instance,
// as the equivalence tests do.

// labelCodec implements topo.Codec over Lehmer ranks of IPG labels.
type labelCodec struct {
	spec Spec
	lc   *perm.LabelCodec
	n    int
	vt   bool
	pool sync.Pool
}

type labelScratch struct {
	cur perm.Label
	tmp perm.Label
}

// NewImplicit returns the codec-backed adjacency source of spec, with
// vertex v the lexicographic rank of its label among all arrangements of
// the seed multiset.  It errors when the arrangement count exceeds the
// int32 vertex representation.
func NewImplicit(spec Spec) (*topo.Implicit, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	lc, err := perm.NewLabelCodec(spec.Seed)
	if err != nil {
		return nil, err
	}
	if lc.Count() > topo.MaxVertices {
		return nil, fmt.Errorf("ipg: %s has %d arrangements; ranks overflow int32", spec.Name, lc.Count())
	}
	c := &labelCodec{spec: spec, lc: lc, n: int(lc.Count())}
	// All-distinct seeds make the IPG a Cayley graph (given the full-orbit
	// precondition, of the symmetric group), hence vertex-transitive.
	c.vt = true
	var seen [256]bool
	for _, s := range spec.Seed {
		if seen[s] {
			c.vt = false
			break
		}
		seen[s] = true
	}
	c.pool.New = func() any {
		m := len(spec.Seed)
		return &labelScratch{cur: make(perm.Label, 0, m), tmp: make(perm.Label, m)}
	}
	return topo.NewImplicit(c), nil
}

func (c *labelCodec) Name() string { return fmt.Sprintf("ipg-lehmer(%s)", c.spec.Name) }

func (c *labelCodec) N() int { return c.n }

func (c *labelCodec) DegreeBound() int { return len(c.spec.Gens) }

func (c *labelCodec) VertexTransitive() bool { return c.vt }

func (c *labelCodec) AppendNeighbors(v int, buf []int32) []int32 {
	s := c.pool.Get().(*labelScratch)
	var err error
	s.cur, err = c.lc.UnrankInto(int64(v), s.cur)
	if err != nil {
		panic(fmt.Sprintf("ipg: %s: vertex %d unrankable: %v", c.spec.Name, v, err))
	}
	for _, g := range c.spec.Gens {
		g.P.ApplyInto(s.tmp, s.cur)
		r, err := c.lc.Rank(s.tmp)
		if err != nil {
			// Generators permute positions, so the image of an arrangement
			// is an arrangement of the same multiset; an error means the
			// codec invariant is broken, not bad input.
			panic(fmt.Sprintf("ipg: %s: generator image unrankable: %v", c.spec.Name, err))
		}
		//lint:ignore indextrunc r < N() <= topo.MaxVertices (math.MaxInt32), checked in NewImplicit
		buf = append(buf, int32(r))
	}
	c.pool.Put(s)
	return buf
}
