package ascend

import (
	"math"
	"math/cmplx"
	"sort"

	"ipg/internal/superipg"
)

// This file implements the concrete ascend/descend algorithms the paper
// cites as the class's canonical members: FFT, bitonic sorting, all-reduce,
// and one-to-all broadcast.

// FFTOp returns the decimation-in-frequency butterfly for an N-point FFT.
// Running it as a descend pass (bits high to low) computes the DFT with the
// output in bit-reversed address order.
func FFTOp(n int, inverse bool) BitOp[complex128] {
	sign := -2 * math.Pi
	if inverse {
		sign = 2 * math.Pi
	}
	return func(bit, addr0, _ int, a, b complex128) (complex128, complex128) {
		span := 1 << uint(bit)
		exp := (addr0 & (span - 1)) * (n >> uint(bit+1))
		w := cmplx.Exp(complex(0, sign*float64(exp)/float64(n)))
		return a + b, (a - b) * w
	}
}

// BitReverse returns i with its low logN bits reversed.
func BitReverse(i, logN int) int {
	r := 0
	for b := 0; b < logN; b++ {
		r = r<<1 | (i>>b)&1
	}
	return r
}

// DFT computes the discrete Fourier transform directly in O(N^2), the
// reference for FFT correctness checks.
func DFT(x []complex128, inverse bool) []complex128 {
	n := len(x)
	sign := -2 * math.Pi
	if inverse {
		sign = 2 * math.Pi
	}
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var sum complex128
		for j := 0; j < n; j++ {
			sum += x[j] * cmplx.Exp(complex(0, sign*float64(j*k)/float64(n)))
		}
		out[k] = sum
	}
	return out
}

// FFT runs the descend-pass FFT on the super-IPG and returns the spectrum
// in natural order (bit-reversal undone), along with the communication
// statistics of the run.  data is indexed by node address.
func FFT(r *Runner[complex128], byAddr []complex128, inverse bool) ([]complex128, Stats, error) {
	n := len(byAddr)
	logN := r.LogN()
	byNode := make([]complex128, n)
	for v := 0; v < r.G.N(); v++ {
		byNode[v] = byAddr[r.homeAddr[v]]
	}
	out, st, err := r.Run(byNode, DescendPass(r.W), FFTOp(n, inverse))
	if err != nil {
		return nil, st, err
	}
	// Back to address order, undoing the bit-reversal of DIF.
	res := make([]complex128, n)
	for v := 0; v < r.G.N(); v++ {
		res[BitReverse(r.homeAddr[v], logN)] = out[v]
	}
	if inverse {
		for i := range res {
			res[i] /= complex(float64(n), 0)
		}
	}
	return res, st, nil
}

// BitonicSort sorts float64 keys (indexed by node address) ascending on the
// super-IPG using the bitonic sorting network: log2(N) merge stages, stage
// k consisting of compare-exchange descends on bits k-1..0 with direction
// chosen by address bit k.  Returns the sorted keys by address and the
// accumulated communication statistics.
func BitonicSort(r *Runner[float64], byAddr []float64) ([]float64, Stats, error) {
	n := len(byAddr)
	logN := r.LogN()
	byNode := make([]float64, n)
	for v := 0; v < r.G.N(); v++ {
		byNode[v] = byAddr[r.homeAddr[v]]
	}
	var total Stats
	cur := byNode
	for k := 1; k <= logN; k++ {
		blockBit := 1 << uint(k)
		for j := k - 1; j >= 0; j-- {
			pass, err := BitsPass(r.W, []int{j})
			if err != nil {
				return nil, total, err
			}
			op := func(_, addr0, _ int, a, b float64) (float64, float64) {
				ascending := addr0&blockBit == 0 || k == logN
				if (a > b) == ascending {
					return b, a
				}
				return a, b
			}
			next, st, err := r.Run(cur, pass, op)
			if err != nil {
				return nil, total, err
			}
			cur = next
			total.SuperSteps += st.SuperSteps
			total.Exchanges += st.Exchanges
			total.CompSteps += st.CompSteps
		}
	}
	total.CommSteps = total.SuperSteps + total.Exchanges
	res := make([]float64, n)
	for v := 0; v < r.G.N(); v++ {
		res[r.homeAddr[v]] = cur[v]
	}
	return res, total, nil
}

// SortedReference returns a sorted copy, the bitonic sort oracle.
func SortedReference(x []float64) []float64 {
	out := append([]float64(nil), x...)
	sort.Float64s(out)
	return out
}

// AllReduceSum runs an ascend pass that leaves the global sum of the input
// at every node.
func AllReduceSum(r *Runner[float64], byAddr []float64) ([]float64, Stats, error) {
	byNode := make([]float64, len(byAddr))
	for v := 0; v < r.G.N(); v++ {
		byNode[v] = byAddr[r.homeAddr[v]]
	}
	op := func(_, _, _ int, a, b float64) (float64, float64) {
		s := a + b
		return s, s
	}
	out, st, err := r.Run(byNode, AscendPass(r.W), op)
	if err != nil {
		return nil, st, err
	}
	res := make([]float64, len(byAddr))
	for v := 0; v < r.G.N(); v++ {
		res[r.homeAddr[v]] = out[v]
	}
	return res, st, nil
}

// Broadcast propagates the value at address 0 to every node via a descend
// pass.
func Broadcast(r *Runner[float64], value float64) ([]float64, Stats, error) {
	byNode := make([]float64, r.G.N())
	for v := 0; v < r.G.N(); v++ {
		if r.homeAddr[v] == 0 {
			byNode[v] = value
		}
	}
	op := func(_, _, _ int, a, _ float64) (float64, float64) {
		return a, a
	}
	out, st, err := r.Run(byNode, DescendPass(r.W), op)
	if err != nil {
		return nil, st, err
	}
	res := make([]float64, r.G.N())
	for v := 0; v < r.G.N(); v++ {
		res[r.homeAddr[v]] = out[v]
	}
	return res, st, nil
}

// PrefixSum computes the inclusive prefix sum (scan) of the values indexed
// by node address, using the classic hypercube scan as an ascend pass:
// each node carries a (prefix, total) pair; at bit b the pair partners
// exchange totals, the high-address side adds the low side's total to its
// prefix, and both adopt the combined total.
func PrefixSum(r *Runner[[2]float64], byAddr []float64) ([]float64, Stats, error) {
	n := len(byAddr)
	byNode := make([][2]float64, n)
	for v := 0; v < r.G.N(); v++ {
		x := byAddr[r.homeAddr[v]]
		byNode[v] = [2]float64{x, x}
	}
	op := func(_, _, _ int, lo, hi [2]float64) ([2]float64, [2]float64) {
		total := lo[1] + hi[1]
		hi[0] += lo[1]
		lo[1], hi[1] = total, total
		return lo, hi
	}
	out, st, err := r.Run(byNode, AscendPass(r.W), op)
	if err != nil {
		return nil, st, err
	}
	res := make([]float64, n)
	for v := 0; v < r.G.N(); v++ {
		res[r.homeAddr[v]] = out[v][0]
	}
	return res, st, nil
}

// PrefixSumReference is the sequential scan oracle.
func PrefixSumReference(x []float64) []float64 {
	out := make([]float64, len(x))
	run := 0.0
	for i, v := range x {
		run += v
		out[i] = run
	}
	return out
}

// Convolve computes the circular convolution of x and h (indexed by node
// address) on the super-IPG via the convolution theorem: three FFT passes
// plus a pointwise product.  Convolution is one of the paper's listed
// ascend/descend applications.
func Convolve(r *Runner[complex128], x, h []complex128) ([]complex128, Stats, error) {
	var total Stats
	acc := func(st Stats) {
		total.SuperSteps += st.SuperSteps
		total.Exchanges += st.Exchanges
		total.CompSteps += st.CompSteps
	}
	fx, st, err := FFT(r, x, false)
	if err != nil {
		return nil, total, err
	}
	acc(st)
	fh, st, err := FFT(r, h, false)
	if err != nil {
		return nil, total, err
	}
	acc(st)
	prod := make([]complex128, len(fx))
	for i := range prod {
		prod[i] = fx[i] * fh[i]
	}
	out, st, err := FFT(r, prod, true)
	if err != nil {
		return nil, total, err
	}
	acc(st)
	total.CommSteps = total.SuperSteps + total.Exchanges
	return out, total, nil
}

// ConvolveReference is the O(N^2) direct circular convolution.
func ConvolveReference(x, h []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for i := 0; i < n; i++ {
		var sum complex128
		for j := 0; j < n; j++ {
			sum += x[j] * h[(i-j+n)%n]
		}
		out[i] = sum
	}
	return out
}

// TheoreticalAscendComm returns the closed-form communication step count of
// Corollaries 3.6 and 3.7 for a full ascend (or descend) pass: l(n+1) for
// CN families and l(n+2)-2 for swap/flip families, where n is the number of
// nucleus dimensions.  It returns -1 for families without a closed form.
func TheoreticalAscendComm(w *superipg.Network) int {
	n := w.Nuc.NumDims()
	switch w.Family {
	case "ring-CN", "complete-CN", "directed-CN":
		return w.L * (n + 1)
	case "HSN", "SFN", "RCC", "HCN":
		return w.L*(n+2) - 2
	}
	return -1
}

// TheoreticalAscendComp returns the closed-form computation step count of
// Corollary 3.7: l * sum_i (m_i - 1).
func TheoreticalAscendComp(w *superipg.Network) int {
	total := 0
	for _, radix := range w.Nuc.Radices() {
		total += radix - 1
	}
	return w.L * total
}
