package ascend

import (
	"fmt"
	"math/bits"
)

// This file implements Dekel-Nassimi-Sahni (DNS) matrix multiplication,
// one of the paper's canonical ascend/descend applications ("many
// applications, such as FFT, bitonic sort, matrix multiplication, and
// convolution, can be formulated using algorithms in this general
// category").  C = A*B on p^3 processors for p x p matrices, p a power of
// two, entirely as single-bit ascend/descend operations:
//
//  1. lift      (k bits, conditional swaps): A[i][j] moves to layer k=j,
//     B[i][j] to layer k=i;
//  2. broadcast (j bits for A, i bits for B, conditional copies): layer k
//     ends up with A[i][k] and B[k][j] everywhere;
//  3. local multiply;
//  4. reduce    (k bits, ascend sums): C[i][j] = sum_k A[i][k]*B[k][j]
//     accumulates on layer k=0.
//
// The address of processor (k,i,j) is k*p^2 + i*p + j.

// ABPair carries the A and B values through the movement phases.
type ABPair struct{ a, b float64 }

// MatMulDNS multiplies the p x p matrices a and b (row-major, p^2 = N^(2/3))
// on the super-IPG underlying r, returning the product row-major and the
// accumulated communication statistics.  The network must have N = p^3
// nodes with binary dimensions.
func MatMulDNS(r *Runner[ABPair], rc *Runner[float64], a, b [][]float64) ([][]float64, Stats, error) {
	logN := r.LogN()
	if logN%3 != 0 {
		return nil, Stats{}, fmt.Errorf("ascend: DNS needs log2(N) divisible by 3, got %d", logN)
	}
	lp := logN / 3
	p := 1 << lp
	if len(a) != p || len(b) != p {
		return nil, Stats{}, fmt.Errorf("ascend: DNS on %d^3 processors needs %dx%d matrices, got %dx%d",
			p, p, p, len(a), len(b))
	}
	n := r.G.N()
	jOf := func(addr int) int { return addr & (p - 1) }
	iOf := func(addr int) int { return addr >> lp & (p - 1) }

	// Initial placement: layer k=0 holds A and B.
	byNode := make([]ABPair, n)
	for v := 0; v < n; v++ {
		addr := r.homeAddr[v]
		if addr>>(2*lp) == 0 {
			byNode[v] = ABPair{a: a[iOf(addr)][jOf(addr)], b: b[iOf(addr)][jOf(addr)]}
		}
	}
	var total Stats
	acc := func(st Stats) {
		total.SuperSteps += st.SuperSteps
		total.Exchanges += st.Exchanges
		total.CompSteps += st.CompSteps
	}

	// Phase 1: lift along the k bits.  At k-bit stage t, swap A across the
	// pair when bit t of j is 1, and B when bit t of i is 1.
	kBits := make([]int, lp)
	for t := 0; t < lp; t++ {
		kBits[t] = 2*lp + t
	}
	liftPass, err := BitsPass(r.W, kBits)
	if err != nil {
		return nil, total, err
	}
	liftOp := func(bit, addr0, _ int, v0, v1 ABPair) (ABPair, ABPair) {
		t := bit - 2*lp
		if jOf(addr0)>>t&1 == 1 {
			v0.a, v1.a = v1.a, v0.a
		}
		if iOf(addr0)>>t&1 == 1 {
			v0.b, v1.b = v1.b, v0.b
		}
		return v0, v1
	}
	cur, st, err := r.Run(byNode, liftPass, liftOp)
	if err != nil {
		return nil, total, err
	}
	acc(st)

	// Phase 2a: broadcast A along the j bits (source: j bit equals k bit).
	jBits := make([]int, lp)
	for t := 0; t < lp; t++ {
		jBits[t] = t
	}
	bcastA, err := BitsPass(r.W, jBits)
	if err != nil {
		return nil, total, err
	}
	opA := func(bit, addr0, _ int, v0, v1 ABPair) (ABPair, ABPair) {
		t := bit
		if addr0>>(2*lp+t)&1 == 0 {
			v1.a = v0.a
		} else {
			v0.a = v1.a
		}
		return v0, v1
	}
	cur, st, err = r.Run(cur, bcastA, opA)
	if err != nil {
		return nil, total, err
	}
	acc(st)

	// Phase 2b: broadcast B along the i bits (source: i bit equals k bit).
	iBits := make([]int, lp)
	for t := 0; t < lp; t++ {
		iBits[t] = lp + t
	}
	bcastB, err := BitsPass(r.W, iBits)
	if err != nil {
		return nil, total, err
	}
	opB := func(bit, addr0, _ int, v0, v1 ABPair) (ABPair, ABPair) {
		t := bit - lp
		if addr0>>(2*lp+t)&1 == 0 {
			v1.b = v0.b
		} else {
			v0.b = v1.b
		}
		return v0, v1
	}
	cur, st, err = r.Run(cur, bcastB, opB)
	if err != nil {
		return nil, total, err
	}
	acc(st)

	// Phase 3: local multiply.
	prod := make([]float64, n)
	for v := 0; v < n; v++ {
		prod[v] = cur[v].a * cur[v].b
	}

	// Phase 4: reduce along the k bits; sums land on the k=0 layer.
	redPass, err := BitsPass(rc.W, kBits)
	if err != nil {
		return nil, total, err
	}
	redOp := func(_, _, _ int, v0, v1 float64) (float64, float64) {
		return v0 + v1, 0
	}
	summed, st, err := rc.Run(prod, redPass, redOp)
	if err != nil {
		return nil, total, err
	}
	acc(st)
	total.CommSteps = total.SuperSteps + total.Exchanges

	c := make([][]float64, p)
	for i := range c {
		c[i] = make([]float64, p)
	}
	for v := 0; v < n; v++ {
		addr := rc.homeAddr[v]
		if addr>>(2*lp) == 0 {
			c[iOf(addr)][jOf(addr)] = summed[v]
		}
	}
	return c, total, nil
}

// MatMulReference is the O(p^3) sequential product for verification.
func MatMulReference(a, b [][]float64) [][]float64 {
	p := len(a)
	c := make([][]float64, p)
	for i := range c {
		c[i] = make([]float64, p)
		for k := 0; k < p; k++ {
			aik := a[i][k]
			for j := 0; j < p; j++ {
				c[i][j] += aik * b[k][j]
			}
		}
	}
	return c
}

// DNSCommSteps returns the bit-operation count of the DNS phases:
// 3*log2(p) movement stages plus the reduce, i.e. 4*log2(p) single-bit
// exchanges (the super-generator transitions on a given family come on
// top, as measured by the returned Stats of MatMulDNS).
func DNSCommSteps(p int) int { return 4 * bits.Len(uint(p-1)) }
