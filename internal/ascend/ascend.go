// Package ascend implements the ascend/descend algorithm framework of
// Section 3.2 of the paper (Theorem 3.5, Corollaries 3.6 and 3.7) for
// super-IPGs, together with the classic algorithms in that class: FFT,
// bitonic sorting, all-reduce, and one-to-all broadcast.
//
// An ascend algorithm applies an operation to data items whose (virtual)
// addresses differ in bit 0, then bit 1, ..., up to bit log2(N)-1; a
// descend algorithm runs the bits in the opposite order.  On a super-IPG
// the address space factors into l groups of log2(M) bits.  The engine
// brings each group to the front in turn (using the family's transition
// words), performs the nucleus exchanges there, and finally restores the
// original arrangement, moving the data physically through the network
// exactly as the paper's algorithm prescribes.
//
// The engine tracks each datum's virtual address and verifies at every
// exchange that paired items differ in exactly one address bit, and at the
// end that every datum has returned to its home node — a full end-to-end
// check of the movement schedule.
package ascend

//lint:file-ignore ctxflow one ascend pass runs dim (= log2 N) rounds of O(N) work on graphs bounded by ipg.MaxNodes, driven by the CLI experiment harness rather than a request handler

import (
	"fmt"
	"math/bits"
	"runtime"
	"sync"

	"ipg/internal/ipg"
	"ipg/internal/superipg"
	"ipg/internal/topo"
)

// BitOp is the per-pair operation of an ascend/descend step: it receives
// the global bit index, the two virtual addresses (addr0 has the bit clear,
// addr1 has it set) and the two values, and returns the new values.
type BitOp[T any] func(bit, addr0, addr1 int, v0, v1 T) (T, T)

// Stats reports the communication structure of a run, in the paper's
// accounting: one communication step per super-generator application and
// one per nucleus dimension exchange (the SDC model lets a node use all
// links of one dimension at once), plus radix-1 computation steps per
// exchange.
type Stats struct {
	SuperSteps int // super-generator applications
	Exchanges  int // nucleus dimension exchanges
	CommSteps  int // SuperSteps + Exchanges
	CompSteps  int // sum of (radix-1) over exchanges
}

// DimRef identifies one global dimension: nucleus dimension Dim (0-based)
// of group Group (1-based).
type DimRef struct {
	Group int
	Dim   int
}

// Pass is a sequence of global dimensions to process, with the bit order
// inside multi-bit (radix > 2) dimensions.
type Pass struct {
	Dims     []DimRef
	DescBits bool
	// NoFinalRestore skips the final super-generator word that returns
	// every datum to its home node, implementing the paper's remark after
	// Corollary 3.7: "if reordering of the results is not required, then
	// the number of communication steps can be further reduced".  The
	// results stay where the last round left them; RunPlaced returns the
	// final placement.
	NoFinalRestore bool
}

// AscendPass returns the full ascend pass: groups 1..l, nucleus dimensions
// in ascending order, bits ascending.
func AscendPass(w *superipg.Network) Pass {
	var dims []DimRef
	for g := 1; g <= w.L; g++ {
		for d := 0; d < w.Nuc.NumDims(); d++ {
			dims = append(dims, DimRef{Group: g, Dim: d})
		}
	}
	return Pass{Dims: dims}
}

// DescendPass returns the full descend pass: groups l..1, dimensions and
// bits descending.
func DescendPass(w *superipg.Network) Pass {
	var dims []DimRef
	for g := w.L; g >= 1; g-- {
		for d := w.Nuc.NumDims() - 1; d >= 0; d-- {
			dims = append(dims, DimRef{Group: g, Dim: d})
		}
	}
	return Pass{Dims: dims, DescBits: true}
}

// BitsPass maps a sequence of global bit indices to a Pass.  It requires
// every nucleus dimension to be binary (radix 2).
func BitsPass(w *superipg.Network, bitSeq []int) (Pass, error) {
	nd := w.Nuc.NumDims()
	for d := 0; d < nd; d++ {
		if w.Nuc.Dims[d].Radix != 2 {
			return Pass{}, fmt.Errorf("ascend: BitsPass requires binary dimensions; %s dim %d has radix %d",
				w.Nuc.Name, d, w.Nuc.Dims[d].Radix)
		}
	}
	total := nd * w.L
	var dims []DimRef
	for _, b := range bitSeq {
		if b < 0 || b >= total {
			return Pass{}, fmt.Errorf("ascend: bit %d out of range 0..%d", b, total-1)
		}
		dims = append(dims, DimRef{Group: b/nd + 1, Dim: b % nd})
	}
	return Pass{Dims: dims}, nil
}

// Runner executes passes over a materialized super-IPG.
type Runner[T any] struct {
	W *superipg.Network
	G *ipg.Graph

	// ports is the port-labelled view of G (port gi = generator gi); the
	// data-movement loop consults only this interface.
	ports topo.Ported

	homeAddr []int // node id -> its own address
	logM     int
	// dimBitOffset[d] is the global bit offset of nucleus dimension d
	// within a group's bit field.
	dimBitOffset []int
	// subgroups caches, per nucleus dimension, the node-id groups of the
	// front-group exchange in one flat array of NumDims x N ids: within
	// dimension d's slab, blocks of radix, block i holding the radix nodes
	// of one subgroup ordered by digit.  Node labels never move (only data
	// does), so the grouping is static; subgroupsBuilt[d] marks filled
	// slabs.
	subgroups      []int32
	subgroupsBuilt []bool
	workers        int
	// addrToNode is the lazily built inverse of homeAddr, used to present
	// displaced (NoFinalRestore) results in address order.
	addrToNode []int32
}

// NewRunner prepares a runner; it requires a power-of-two nucleus.
func NewRunner[T any](w *superipg.Network, g *ipg.Graph) (*Runner[T], error) {
	logM, err := w.Nuc.TotalBits()
	if err != nil {
		return nil, err
	}
	r := &Runner[T]{W: w, G: g, ports: g, logM: logM, workers: runtime.GOMAXPROCS(0)}
	r.subgroups = make([]int32, w.Nuc.NumDims()*g.N())
	r.subgroupsBuilt = make([]bool, w.Nuc.NumDims())
	off := 0
	for d := 0; d < w.Nuc.NumDims(); d++ {
		r.dimBitOffset = append(r.dimBitOffset, off)
		b, err := w.Nuc.DimBits(d)
		if err != nil {
			return nil, err
		}
		off += b
	}
	r.homeAddr = make([]int, g.N())
	for v := 0; v < g.N(); v++ {
		a, err := w.AddressOf(g.Label(v))
		if err != nil {
			return nil, err
		}
		r.homeAddr[v] = a
	}
	return r, nil
}

// LogN returns log2 of the network size.
func (r *Runner[T]) LogN() int { return r.logM * r.W.L }

// Run executes the pass on a copy of data (indexed by node id) and returns
// the resulting data (indexed by node id again: every datum is moved back
// to its home node), along with the communication statistics.
func (r *Runner[T]) Run(data []T, pass Pass, op BitOp[T]) ([]T, Stats, error) {
	out, placement, st, err := r.RunPlaced(data, pass, op)
	if err != nil {
		return nil, st, err
	}
	if pass.NoFinalRestore {
		// Re-index by home address on behalf of the caller (a logical,
		// zero-communication view of the displaced results).
		byNode := make([]T, len(out))
		for v := range out {
			byNode[r.nodeOfAddr(placement[v])] = out[v]
		}
		return byNode, st, nil
	}
	return out, st, nil
}

// RunPlaced is Run without the convenience re-indexing: it returns the
// data as physically placed (placement[v] = virtual address of the datum
// at node v).  With NoFinalRestore the placement is whatever arrangement
// the last round left; otherwise it is the identity.
func (r *Runner[T]) RunPlaced(data []T, pass Pass, op BitOp[T]) ([]T, []int, Stats, error) {
	g, w := r.G, r.W
	if len(data) != g.N() {
		return nil, nil, Stats{}, fmt.Errorf("ascend: data length %d != %d nodes", len(data), g.N())
	}
	cur := make([]T, len(data))
	copy(cur, data)
	vaddr := make([]int, len(data))
	copy(vaddr, r.homeAddr)
	tmpT := make([]T, len(data))
	tmpA := make([]int, len(data))

	var st Stats
	front := 1
	applyWord := func(word []int) {
		for _, gi := range word {
			// Generator action is a bijection on nodes, so concurrent
			// chunks write disjoint destinations.
			r.parallelBlocks(g.N(), func(lo, hi int) {
				for v := lo; v < hi; v++ {
					nb := r.ports.Port(v, gi)
					tmpT[nb] = cur[v]
					tmpA[nb] = vaddr[v]
				}
			})
			cur, tmpT = tmpT, cur
			vaddr, tmpA = tmpA, vaddr
			st.SuperSteps++
		}
	}

	for _, dr := range pass.Dims {
		if dr.Group < 1 || dr.Group > w.L || dr.Dim < 0 || dr.Dim >= w.Nuc.NumDims() {
			return nil, nil, st, fmt.Errorf("ascend: bad dimension reference %+v", dr)
		}
		if dr.Group != front {
			applyWord(w.TransitionWord(front, dr.Group))
			front = dr.Group
		}
		if err := r.exchange(cur, vaddr, dr.Dim, pass.DescBits, op, &st); err != nil {
			return nil, nil, st, err
		}
	}
	if !pass.NoFinalRestore {
		applyWord(w.FinalWord(front))
		for v := 0; v < g.N(); v++ {
			if vaddr[v] != r.homeAddr[v] {
				return nil, nil, st, fmt.Errorf("ascend: datum with address %d ended at node %d (home address %d)",
					vaddr[v], v, r.homeAddr[v])
			}
		}
	} else {
		// The placement must still be a bijection onto the address space.
		seen := make([]bool, g.N())
		for _, a := range vaddr {
			if a < 0 || a >= g.N() || seen[a] {
				return nil, nil, st, fmt.Errorf("ascend: displaced placement is not a bijection (address %d)", a)
			}
			seen[a] = true
		}
	}
	st.CommSteps = st.SuperSteps + st.Exchanges
	return cur, vaddr, st, nil
}

// nodeOfAddr returns the node whose home address is a (lazily built
// inverse of homeAddr).
func (r *Runner[T]) nodeOfAddr(a int) int {
	if r.addrToNode == nil {
		r.addrToNode = make([]int32, len(r.homeAddr))
		for v, ha := range r.homeAddr {
			//lint:ignore indextrunc v < g.N() <= ipg.MaxNodes (1<<22)
			r.addrToNode[ha] = int32(v)
		}
	}
	return int(r.addrToNode[a])
}

// dimSubgroups returns (building and caching on first use) the exchange
// subgroups of nucleus dimension d: g.N() node ids in blocks of radix,
// each block one subgroup ordered by dimension-d digit.  The result is a
// view into dimension d's slab of the flat cache.
func (r *Runner[T]) dimSubgroups(d int) ([]int32, error) {
	g, w := r.G, r.W
	flat := r.subgroups[d*g.N() : (d+1)*g.N()]
	if r.subgroupsBuilt[d] {
		return flat, nil
	}
	nuc := w.Nuc
	m := w.SymbolLen()
	radix := nuc.Dims[d].Radix
	idx := make(map[string]int32, g.N()/radix)
	for i := range flat {
		flat[i] = -1
	}
	scratch := make([]byte, m)
	next := int32(0)
	for v := 0; v < g.N(); v++ {
		lbl := g.Label(v)
		copy(scratch, lbl[:m])
		digit, err := nuc.Digit(scratch, d)
		if err != nil {
			return nil, err
		}
		if err := nuc.SetDigit(scratch, d, 0); err != nil {
			return nil, err
		}
		key := string(scratch) + string(lbl[m:])
		block, ok := idx[key]
		if !ok {
			block = next
			next++
			idx[key] = block
		}
		slot := int(block)*radix + digit
		if flat[slot] != -1 {
			return nil, fmt.Errorf("ascend: duplicate digit %d in subgroup of dim %d", digit, d)
		}
		//lint:ignore indextrunc v < g.N() <= ipg.MaxNodes (1<<22)
		flat[slot] = int32(v)
	}
	for i, v := range flat {
		if v < 0 {
			return nil, fmt.Errorf("ascend: dim %d subgroup block %d missing digit %d", d, i/radix, i%radix)
		}
	}
	r.subgroupsBuilt[d] = true
	return flat, nil
}

// exchange performs the nucleus dimension-d exchange in the front group:
// the radix items of every dimension-d subgroup run a butterfly over the
// dimension's bits.  Subgroups are independent, so they execute on a
// worker pool.
func (r *Runner[T]) exchange(cur []T, vaddr []int, d int, descBits bool, op BitOp[T], st *Stats) error {
	nuc := r.W.Nuc
	radix := nuc.Dims[d].Radix
	nbits, err := nuc.DimBits(d)
	if err != nil {
		return err
	}
	flat, err := r.dimSubgroups(d)
	if err != nil {
		return err
	}
	nblocks := len(flat) / radix
	var firstErr error
	var errMu sync.Mutex
	r.parallelBlocks(nblocks, func(lo, hi int) {
		for blk := lo; blk < hi; blk++ {
			sg := flat[blk*radix : (blk+1)*radix]
			for bi := 0; bi < nbits; bi++ {
				b := bi
				if descBits {
					b = nbits - 1 - bi
				}
				for x := 0; x < radix; x++ {
					if x&(1<<b) != 0 {
						continue
					}
					y := x | 1<<b
					va, vb := sg[x], sg[y]
					a0, a1 := vaddr[va], vaddr[vb]
					if a0&^a1 != 0 || bits.OnesCount(uint(a1^a0)) != 1 {
						// The pair must differ in exactly one bit, with the
						// digit-0 side lower.
						errMu.Lock()
						if firstErr == nil {
							firstErr = fmt.Errorf("ascend: pair addresses %d,%d malformed at dim %d bit %d", a0, a1, d, b)
						}
						errMu.Unlock()
						return
					}
					s := bits.TrailingZeros(uint(a0 ^ a1))
					cur[va], cur[vb] = op(s, a0, a1, cur[va], cur[vb])
				}
			}
		}
	})
	if firstErr != nil {
		return firstErr
	}
	st.Exchanges++
	st.CompSteps += radix - 1
	return nil
}

// parallelBlocks runs fn over [0,n) in contiguous chunks on the worker
// pool.  Chunks touch disjoint subgroups (and therefore disjoint node ids),
// so no synchronization beyond the final barrier is needed.
func (r *Runner[T]) parallelBlocks(n int, fn func(lo, hi int)) {
	workers := r.workers
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < 256 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// Reference executes the bit sequence directly on an address-indexed array,
// the trivially correct baseline against which super-IPG runs are checked.
// It mirrors the execution on a hypercube of log2(len(data)) dimensions,
// which performs one communication step per bit.
func Reference[T any](data []T, bitSeq []int, op BitOp[T]) []T {
	n := len(data)
	out := make([]T, n)
	copy(out, data)
	for _, b := range bitSeq {
		span := 1 << b
		for a0 := 0; a0 < n; a0++ {
			if a0&span != 0 {
				continue
			}
			a1 := a0 | span
			out[a0], out[a1] = op(b, a0, a1, out[a0], out[a1])
		}
	}
	return out
}

// AscendBits returns the bit sequence 0,1,...,logN-1.
func AscendBits(logN int) []int {
	seq := make([]int, logN)
	for i := range seq {
		seq[i] = i
	}
	return seq
}

// DescendBits returns the bit sequence logN-1,...,1,0.
func DescendBits(logN int) []int {
	seq := make([]int, logN)
	for i := range seq {
		seq[i] = logN - 1 - i
	}
	return seq
}
