package ascend

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"ipg/internal/nucleus"
	"ipg/internal/superipg"
)

func TestMatMulDNS(t *testing.T) {
	// p = 4: 64 processors.  Run on several families.
	nets := []*superipg.Network{
		superipg.HSN(3, nucleus.Hypercube(2)),
		superipg.CompleteCN(3, nucleus.Hypercube(2)),
		superipg.HSN(2, nucleus.Hypercube(3)),
		superipg.SFN(6, nucleus.Hypercube(1)),
	}
	rng := rand.New(rand.NewSource(9))
	p := 4
	a := randMatrix(rng, p)
	b := randMatrix(rng, p)
	want := MatMulReference(a, b)
	for _, w := range nets {
		g, err := w.Build()
		if err != nil {
			t.Fatal(err)
		}
		r, err := NewRunner[ABPair](w, g)
		if err != nil {
			t.Fatal(err)
		}
		rc, err := NewRunner[float64](w, g)
		if err != nil {
			t.Fatal(err)
		}
		got, st, err := MatMulDNS(r, rc, a, b)
		if err != nil {
			t.Fatalf("%s: %v", w.Name(), err)
		}
		for i := 0; i < p; i++ {
			for j := 0; j < p; j++ {
				if math.Abs(got[i][j]-want[i][j]) > 1e-9 {
					t.Fatalf("%s: C[%d][%d] = %v, want %v", w.Name(), i, j, got[i][j], want[i][j])
				}
			}
		}
		if st.Exchanges != DNSCommSteps(p) {
			t.Errorf("%s: %d exchanges, want %d", w.Name(), st.Exchanges, DNSCommSteps(p))
		}
		if st.CommSteps < st.Exchanges {
			t.Errorf("%s: comm accounting broken: %+v", w.Name(), st)
		}
	}
}

func TestMatMulDNSLarger(t *testing.T) {
	// p = 8: 512 processors on HSN(3,Q3).
	w := superipg.HSN(3, nucleus.Hypercube(3))
	g, err := w.Build()
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner[ABPair](w, g)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := NewRunner[float64](w, g)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(10))
	p := 8
	a := randMatrix(rng, p)
	b := randMatrix(rng, p)
	got, _, err := MatMulDNS(r, rc, a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := MatMulReference(a, b)
	for i := 0; i < p; i++ {
		for j := 0; j < p; j++ {
			if math.Abs(got[i][j]-want[i][j]) > 1e-9 {
				t.Fatalf("C[%d][%d] = %v, want %v", i, j, got[i][j], want[i][j])
			}
		}
	}
}

func TestMatMulDNSErrors(t *testing.T) {
	// logN = 4 is not divisible by 3.
	w := superipg.HSN(2, nucleus.Hypercube(2))
	g, _ := w.Build()
	r, _ := NewRunner[ABPair](w, g)
	rc, _ := NewRunner[float64](w, g)
	if _, _, err := MatMulDNS(r, rc, randMatrix(rand.New(rand.NewSource(1)), 2), randMatrix(rand.New(rand.NewSource(2)), 2)); err == nil {
		t.Error("indivisible logN should error")
	}
	// Wrong matrix size.
	w2 := superipg.HSN(3, nucleus.Hypercube(2))
	g2, _ := w2.Build()
	r2, _ := NewRunner[ABPair](w2, g2)
	rc2, _ := NewRunner[float64](w2, g2)
	if _, _, err := MatMulDNS(r2, rc2, randMatrix(rand.New(rand.NewSource(1)), 2), randMatrix(rand.New(rand.NewSource(2)), 2)); err == nil {
		t.Error("wrong matrix size should error")
	}
}

func randMatrix(rng *rand.Rand, p int) [][]float64 {
	m := make([][]float64, p)
	for i := range m {
		m[i] = make([]float64, p)
		for j := range m[i] {
			m[i][j] = rng.Float64()*2 - 1
		}
	}
	return m
}

func TestPrefixSum(t *testing.T) {
	for _, w := range []*superipg.Network{
		superipg.HSN(3, nucleus.Hypercube(2)),
		superipg.CompleteCN(2, nucleus.Hypercube(3)),
		superipg.RingCN(3, nucleus.Hypercube(2)),
	} {
		g, err := w.Build()
		if err != nil {
			t.Fatal(err)
		}
		r, err := NewRunner[[2]float64](w, g)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(4))
		x := make([]float64, g.N())
		for i := range x {
			x[i] = rng.Float64()*10 - 5
		}
		got, st, err := PrefixSum(r, x)
		if err != nil {
			t.Fatalf("%s: %v", w.Name(), err)
		}
		want := PrefixSumReference(x)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9*float64(g.N()) {
				t.Fatalf("%s: scan[%d] = %v, want %v", w.Name(), i, got[i], want[i])
			}
		}
		if st.CommSteps != TheoreticalAscendComm(w) {
			t.Errorf("%s: scan comm steps = %d, want %d", w.Name(), st.CommSteps, TheoreticalAscendComm(w))
		}
	}
}

func TestConvolve(t *testing.T) {
	w := superipg.CompleteCN(2, nucleus.Hypercube(3))
	g, err := w.Build()
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner[complex128](w, g)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	n := g.N()
	x := make([]complex128, n)
	h := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.Float64()-0.5, rng.Float64()-0.5)
		h[i] = complex(rng.Float64()-0.5, 0)
	}
	got, st, err := Convolve(r, x, h)
	if err != nil {
		t.Fatal(err)
	}
	want := ConvolveReference(x, h)
	for i := range want {
		if cmplx.Abs(got[i]-want[i]) > 1e-6*float64(n) {
			t.Fatalf("conv[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// Three FFT passes' worth of communication.
	if st.CommSteps != 3*TheoreticalAscendComm(w) {
		t.Errorf("conv comm steps = %d, want %d", st.CommSteps, 3*TheoreticalAscendComm(w))
	}
}
