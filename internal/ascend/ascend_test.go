package ascend

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"ipg/internal/ipg"
	"ipg/internal/nucleus"
	"ipg/internal/superipg"
)

func runnerFor[T any](t *testing.T, w *superipg.Network) (*Runner[T], *ipg.Graph) {
	t.Helper()
	g, err := w.Build()
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner[T](w, g)
	if err != nil {
		t.Fatal(err)
	}
	return r, g
}

func testNetworks() []*superipg.Network {
	q2 := nucleus.Hypercube(2)
	return []*superipg.Network{
		superipg.HSN(3, q2),
		superipg.RingCN(3, q2),
		superipg.CompleteCN(3, q2),
		superipg.SFN(3, q2),
		superipg.HSN(2, nucleus.Hypercube(3)),
	}
}

func TestAscendMatchesReference(t *testing.T) {
	// A generic non-commutative op: results must match the direct
	// address-array execution exactly.
	op := func(bit, a0, a1 int, x, y float64) (float64, float64) {
		return x + 2*y + float64(bit), x - y + float64(a0%7) - float64(a1%5)
	}
	for _, w := range testNetworks() {
		r, g := runnerFor[float64](t, w)
		n := g.N()
		rng := rand.New(rand.NewSource(42))
		byAddr := make([]float64, n)
		for i := range byAddr {
			byAddr[i] = rng.Float64()
		}
		byNode := make([]float64, n)
		for v := 0; v < n; v++ {
			byNode[v] = byAddr[r.homeAddr[v]]
		}
		got, st, err := r.Run(byNode, AscendPass(w), op)
		if err != nil {
			t.Fatalf("%s: %v", w.Name(), err)
		}
		want := Reference(byAddr, AscendBits(r.LogN()), op)
		for v := 0; v < n; v++ {
			if math.Abs(got[v]-want[r.homeAddr[v]]) > 1e-9 {
				t.Fatalf("%s: node %d: got %v want %v", w.Name(), v, got[v], want[r.homeAddr[v]])
			}
		}
		if st.CommSteps != st.SuperSteps+st.Exchanges {
			t.Errorf("%s: comm accounting inconsistent: %+v", w.Name(), st)
		}
	}
}

func TestDescendMatchesReference(t *testing.T) {
	op := func(bit, a0, a1 int, x, y float64) (float64, float64) {
		return 0.5*x + y, float64(bit+1) * (x - 0.25*y)
	}
	for _, w := range testNetworks() {
		r, g := runnerFor[float64](t, w)
		n := g.N()
		byAddr := make([]float64, n)
		for i := range byAddr {
			byAddr[i] = float64(i*i%97) / 7
		}
		byNode := make([]float64, n)
		for v := 0; v < n; v++ {
			byNode[v] = byAddr[r.homeAddr[v]]
		}
		got, _, err := r.Run(byNode, DescendPass(w), op)
		if err != nil {
			t.Fatalf("%s: %v", w.Name(), err)
		}
		want := Reference(byAddr, DescendBits(r.LogN()), op)
		for v := 0; v < n; v++ {
			if math.Abs(got[v]-want[r.homeAddr[v]]) > 1e-9 {
				t.Fatalf("%s: node %d mismatch", w.Name(), v)
			}
		}
	}
}

func TestNoFinalRestore(t *testing.T) {
	// The paper's remark after Corollary 3.7: skipping the final
	// rearrangement saves communication steps; results are still correct,
	// just displaced (Run re-indexes them logically).
	op := func(_, _, _ int, a, b float64) (float64, float64) {
		s := a + b
		return s, s
	}
	for _, w := range testNetworks() {
		r, g := runnerFor[float64](t, w)
		data := make([]float64, g.N())
		sum := 0.0
		for i := range data {
			data[i] = float64(i % 9)
			sum += data[i]
		}
		full := AscendPass(w)
		_, stFull, err := r.Run(data, full, op)
		if err != nil {
			t.Fatal(err)
		}
		fast := AscendPass(w)
		fast.NoFinalRestore = true
		out, stFast, err := r.Run(data, fast, op)
		if err != nil {
			t.Fatalf("%s: %v", w.Name(), err)
		}
		if stFast.SuperSteps >= stFull.SuperSteps {
			t.Errorf("%s: no-restore should save super steps (%d vs %d)",
				w.Name(), stFast.SuperSteps, stFull.SuperSteps)
		}
		for _, v := range out {
			if v != sum {
				t.Fatalf("%s: all-reduce value %v, want %v", w.Name(), v, sum)
			}
		}
		// RunPlaced exposes the raw displaced placement: a bijection.
		_, placement, _, err := r.RunPlaced(data, fast, op)
		if err != nil {
			t.Fatal(err)
		}
		seen := make([]bool, g.N())
		for _, a := range placement {
			if seen[a] {
				t.Fatalf("%s: placement not a bijection", w.Name())
			}
			seen[a] = true
		}
	}
}

func TestCorollary36CommSteps(t *testing.T) {
	// CN over Q_k: l(k+1) comm steps; HSN/SFN over Q_k: l(k+2)-2.
	for k := 1; k <= 3; k++ {
		nuc := nucleus.Hypercube(k)
		for l := 2; l <= 3; l++ {
			for _, w := range []*superipg.Network{
				superipg.HSN(l, nuc),
				superipg.SFN(l, nuc),
				superipg.RingCN(l, nuc),
				superipg.CompleteCN(l, nuc),
			} {
				r, g := runnerFor[float64](t, w)
				data := make([]float64, g.N())
				_, st, err := r.Run(data, AscendPass(w), func(_, _, _ int, a, b float64) (float64, float64) { return a, b })
				if err != nil {
					t.Fatal(err)
				}
				want := TheoreticalAscendComm(w)
				if st.CommSteps != want {
					t.Errorf("%s: ascend comm steps = %d, want %d", w.Name(), st.CommSteps, want)
				}
				// Descend costs the same.
				_, st2, err := r.Run(data, DescendPass(w), func(_, _, _ int, a, b float64) (float64, float64) { return a, b })
				if err != nil {
					t.Fatal(err)
				}
				if st2.CommSteps != want {
					t.Errorf("%s: descend comm steps = %d, want %d", w.Name(), st2.CommSteps, want)
				}
			}
		}
	}
}

func TestCorollary37GHCSteps(t *testing.T) {
	// The paper's example: m_i = 4, n = 3 nucleus: ascend in (2/3)log2(N)
	// comm steps on a CN and (5/6)log2(N)-2 on an HSN, with l*sum(m_i-1)
	// computation steps.
	nuc := nucleus.GeneralizedHypercube(4, 4, 4)
	l := 2
	logN := 6 * l // N = 64^l
	for _, w := range []*superipg.Network{
		superipg.CompleteCN(l, nuc),
		superipg.HSN(l, nuc),
	} {
		r, g := runnerFor[float64](t, w)
		data := make([]float64, g.N())
		_, st, err := r.Run(data, AscendPass(w), func(_, _, _ int, a, b float64) (float64, float64) { return a, b })
		if err != nil {
			t.Fatal(err)
		}
		var wantComm int
		switch w.Family {
		case "complete-CN":
			wantComm = 2 * logN / 3
		case "HSN":
			wantComm = 5*logN/6 - 2
		}
		if st.CommSteps != wantComm {
			t.Errorf("%s: comm steps = %d, want %d", w.Name(), st.CommSteps, wantComm)
		}
		if want := TheoreticalAscendComp(w); st.CompSteps != want {
			t.Errorf("%s: comp steps = %d, want %d", w.Name(), st.CompSteps, want)
		}
	}
}

func TestFFTAgainstDFT(t *testing.T) {
	for _, w := range testNetworks() {
		r, g := runnerFor[complex128](t, w)
		n := g.N()
		rng := rand.New(rand.NewSource(7))
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.Float64()-0.5, rng.Float64()-0.5)
		}
		got, st, err := FFT(r, x, false)
		if err != nil {
			t.Fatalf("%s: %v", w.Name(), err)
		}
		want := DFT(x, false)
		for k := range want {
			if cmplx.Abs(got[k]-want[k]) > 1e-6*float64(n) {
				t.Fatalf("%s: FFT[%d] = %v, want %v", w.Name(), k, got[k], want[k])
			}
		}
		if st.CommSteps != TheoreticalAscendComm(w) {
			t.Errorf("%s: FFT comm steps = %d, want %d", w.Name(), st.CommSteps, TheoreticalAscendComm(w))
		}
	}
}

func TestFFTRoundTrip(t *testing.T) {
	w := superipg.HSN(2, nucleus.Hypercube(3))
	r, g := runnerFor[complex128](t, w)
	n := g.N()
	rng := rand.New(rand.NewSource(11))
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.Float64(), rng.Float64())
	}
	spec, _, err := FFT(r, x, false)
	if err != nil {
		t.Fatal(err)
	}
	back, _, err := FFT(r, spec, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if cmplx.Abs(back[i]-x[i]) > 1e-9*float64(n) {
			t.Fatalf("roundtrip[%d] = %v, want %v", i, back[i], x[i])
		}
	}
}

func TestBitonicSort(t *testing.T) {
	for _, w := range testNetworks() {
		r, g := runnerFor[float64](t, w)
		n := g.N()
		rng := rand.New(rand.NewSource(13))
		keys := make([]float64, n)
		for i := range keys {
			keys[i] = rng.Float64() * 100
		}
		got, st, err := BitonicSort(r, keys)
		if err != nil {
			t.Fatalf("%s: %v", w.Name(), err)
		}
		want := SortedReference(keys)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: sorted[%d] = %v, want %v", w.Name(), i, got[i], want[i])
			}
		}
		logN := r.LogN()
		if st.Exchanges != logN*(logN+1)/2 {
			t.Errorf("%s: exchanges = %d, want %d", w.Name(), st.Exchanges, logN*(logN+1)/2)
		}
	}
}

func TestLargeParallelFFT(t *testing.T) {
	// 4096 nodes crosses the engine's parallel-execution threshold (256
	// subgroup blocks), exercising the worker-pool paths; results are
	// verified by inverse round trip.
	w := superipg.HSN(3, nucleus.Hypercube(4))
	r, g := runnerFor[complex128](t, w)
	rng := rand.New(rand.NewSource(21))
	x := make([]complex128, g.N())
	for i := range x {
		x[i] = complex(rng.Float64()-0.5, rng.Float64()-0.5)
	}
	spec, st, err := FFT(r, x, false)
	if err != nil {
		t.Fatal(err)
	}
	if st.CommSteps != TheoreticalAscendComm(w) {
		t.Errorf("comm steps = %d, want %d", st.CommSteps, TheoreticalAscendComm(w))
	}
	back, _, err := FFT(r, spec, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if cmplx.Abs(back[i]-x[i]) > 1e-8*float64(g.N()) {
			t.Fatalf("roundtrip failed at %d", i)
		}
	}
}

func TestAllReduceAndBroadcast(t *testing.T) {
	w := superipg.CompleteCN(3, nucleus.Hypercube(2))
	r, g := runnerFor[float64](t, w)
	n := g.N()
	vals := make([]float64, n)
	sum := 0.0
	for i := range vals {
		vals[i] = float64(i)
		sum += vals[i]
	}
	red, _, err := AllReduceSum(r, vals)
	if err != nil {
		t.Fatal(err)
	}
	for i := range red {
		if math.Abs(red[i]-sum) > 1e-9 {
			t.Fatalf("allreduce[%d] = %v, want %v", i, red[i], sum)
		}
	}
	bc, _, err := Broadcast(r, 42.5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range bc {
		if bc[i] != 42.5 {
			t.Fatalf("broadcast[%d] = %v", i, bc[i])
		}
	}
}

func TestBitsPassErrors(t *testing.T) {
	w := superipg.CompleteCN(2, nucleus.Complete(4))
	if _, err := BitsPass(w, []int{0}); err == nil {
		t.Error("BitsPass should reject radix-4 dimensions")
	}
	w2 := superipg.HSN(2, nucleus.Hypercube(2))
	if _, err := BitsPass(w2, []int{9}); err == nil {
		t.Error("BitsPass should reject out-of-range bits")
	}
}

func TestNewRunnerRejectsNonPowerOf2(t *testing.T) {
	w := superipg.HSN(2, nucleus.Complete(3))
	g, err := w.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewRunner[float64](w, g); err == nil {
		t.Error("NewRunner should reject K3 nucleus (M not a power of 2)")
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	w := superipg.HSN(2, nucleus.Hypercube(2))
	r, _ := runnerFor[float64](t, w)
	if _, _, err := r.Run(make([]float64, 3), AscendPass(w), nil); err == nil {
		t.Error("Run should reject wrong-length data")
	}
	bad := Pass{Dims: []DimRef{{Group: 9, Dim: 0}}}
	if _, _, err := r.Run(make([]float64, 16), bad, func(_, _, _ int, a, b float64) (float64, float64) { return a, b }); err == nil {
		t.Error("Run should reject bad dimension refs")
	}
}

func TestRadix4ButterflyOrder(t *testing.T) {
	// GHC(4,4) nucleus: ascend over a radix-4 dimension must apply bit 0
	// then bit 1 inside the dimension, matching the reference.
	w := superipg.HSN(2, nucleus.GeneralizedHypercube(4, 4))
	r, g := runnerFor[float64](t, w)
	n := g.N()
	byAddr := make([]float64, n)
	for i := range byAddr {
		byAddr[i] = float64((i*37 + 11) % 101)
	}
	byNode := make([]float64, n)
	for v := 0; v < n; v++ {
		byNode[v] = byAddr[r.homeAddr[v]]
	}
	op := func(bit, a0, a1 int, x, y float64) (float64, float64) {
		return x + y*float64(bit+1), x*float64(bit+2) - y
	}
	got, _, err := r.Run(byNode, AscendPass(w), op)
	if err != nil {
		t.Fatal(err)
	}
	want := Reference(byAddr, AscendBits(r.LogN()), op)
	for v := 0; v < n; v++ {
		if math.Abs(got[v]-want[r.homeAddr[v]]) > 1e-9 {
			t.Fatalf("radix-4 mismatch at node %d", v)
		}
	}
}
