package schedule

import (
	"testing"

	"ipg/internal/nucleus"
	"ipg/internal/superipg"
)

func TestExecuteDeliversAllDimensions(t *testing.T) {
	// End-to-end Theorem 3.8: the schedule's data movement delivers every
	// dimension's packets to the correct HPN neighbors on real graphs.
	nets := []*superipg.Network{
		superipg.HSN(3, nucleus.Hypercube(2)),
		superipg.HSN(4, nucleus.Hypercube(2)),
		superipg.CompleteCN(3, nucleus.Hypercube(2)),
		superipg.CompleteCN(4, nucleus.Hypercube(2)),
		superipg.SFN(3, nucleus.Hypercube(2)),
		superipg.HSN(2, nucleus.Hypercube(4)),
		superipg.CompleteCN(2, nucleus.GeneralizedHypercube(4, 2)),
	}
	for _, w := range nets {
		s, err := Build(w)
		if err != nil {
			t.Fatalf("%s: %v", w.Name(), err)
		}
		if err := s.Verify(); err != nil {
			t.Fatalf("%s: %v", w.Name(), err)
		}
		g, err := w.Build()
		if err != nil {
			t.Fatalf("%s: %v", w.Name(), err)
		}
		if err := s.Execute(g); err != nil {
			t.Errorf("%s: %v", w.Name(), err)
		}
	}
}

func TestQuickScheduleExecuteRandomSizes(t *testing.T) {
	// Property: for every (l, n) in a modest grid and every single-step
	// family, the built schedule verifies and executes correctly on the
	// materialized graph.
	if testing.Short() {
		t.Skip("grid execution is slow in -short mode")
	}
	for n := 1; n <= 3; n++ {
		for l := 2; l <= 4; l++ {
			if 1<<(n*l) > 4096 {
				continue
			}
			for _, w := range []*superipg.Network{
				superipg.HSN(l, nucleus.Hypercube(n)),
				superipg.CompleteCN(l, nucleus.Hypercube(n)),
				superipg.SFN(l, nucleus.Hypercube(n)),
			} {
				s, err := Build(w)
				if err != nil {
					t.Fatalf("%s: %v", w.Name(), err)
				}
				if err := s.Verify(); err != nil {
					t.Fatalf("%s: %v", w.Name(), err)
				}
				g, err := w.Build()
				if err != nil {
					t.Fatal(err)
				}
				if err := s.Execute(g); err != nil {
					t.Fatalf("%s (l=%d n=%d): %v", w.Name(), l, n, err)
				}
			}
		}
	}
}

func TestExecuteDetectsCorruption(t *testing.T) {
	w := superipg.HSN(3, nucleus.Hypercube(2))
	s, err := Build(w)
	if err != nil {
		t.Fatal(err)
	}
	g, err := w.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Swap a nucleus generator: packets land on the wrong neighbor.
	s.MidGen[3] = (s.MidGen[3] + 1) % w.NumNucGens()
	if err := s.Execute(g); err == nil {
		t.Error("Execute should detect a corrupted schedule")
	}
}
