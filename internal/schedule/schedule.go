// Package schedule constructs and verifies the all-port emulation schedules
// of Theorem 3.8: emulating an l*n-dimensional HPN(l, G) on a super-IPG
// whose super-generators bring any group to the front in a single step
// (HSN, complete-CN, SFN) in max(2n, l+1) time steps, where n is the number
// of nucleus generators.
//
// Every HPN dimension j > n requires the three-transmission sequence
// S_{j1}, N_{j0}, S_{j1}^{-1}; dimensions j <= n require only N_j.  A time
// step may use each directed link type (generator) of the super-IPG at most
// once, because under the all-port model each node owns one outgoing link
// per generator.  Note that the forward link of group i and the return link
// of another group can be the same generator (complete-CN: the return for
// group i is L_{l-i+1}, the forward for group l-i+2), and for involution
// families (HSN, SFN) the forward and return of the same group share one
// generator; the constructed schedule respects both sharings.
//
// Construction (verified, and shown by Verify to meet every constraint):
//
//   - group-1 dimensions all fire N_k at step 1 (as in the paper's proof);
//   - the nucleus step of dimension (i,k), i >= 2, is
//     b(i,k) = 2 + ((i+k-3) mod (T-2)), a Latin-column pattern that keeps
//     each N_k used at most once per step;
//   - within each group the n dimensions, ordered by b, take forward steps
//     1..n and return steps T-n+1..T in rank order, which guarantees
//     a < b < c and keeps every super-generator to at most one use per
//     step with all forwards disjoint from all returns (T >= 2n).
//
// For l = 5, n = 3 this reproduces Figure 1b's headline numbers exactly:
// 6 steps, all 7 link types busy during steps 1-5, 39/42 = 93% average
// utilization.
package schedule

import (
	"fmt"
	"sort"
	"strings"

	"ipg/internal/superipg"
)

// Schedule is an all-port emulation schedule for HPN(l, G) on a super-IPG.
type Schedule struct {
	Net  *superipg.Network
	L, N int
	T    int // number of time steps (max(2n, l+1))

	// Fwd, Mid, Ret give the 1-based step of each transmission of HPN
	// dimension j (1-based index j-1).  For j <= n, Fwd and Ret are 0.
	Fwd, Mid, Ret []int
	// FwdGen, MidGen, RetGen give the generator (global index into
	// Net.Gens()) used by each transmission; FwdGen/RetGen are -1 for
	// group-1 dimensions.
	FwdGen, MidGen, RetGen []int
}

// Steps returns the theoretical schedule length max(2n, l+1) of Theorem 3.8.
func Steps(l, n int) int {
	if 2*n > l+1 {
		return 2 * n
	}
	return l + 1
}

// Build constructs the schedule for the given super-IPG.  The network's
// bring/restore words must be single generators (HSN, complete-CN, SFN);
// ring-CN is rejected, matching the theorem's scope.
func Build(w *superipg.Network) (*Schedule, error) {
	l, n := w.L, w.NumNucGens()
	for i := 2; i <= l; i++ {
		if len(w.BringToFront(i)) != 1 || len(w.RestoreFromFront(i)) != 1 {
			return nil, fmt.Errorf("schedule: %s cannot bring group %d to the front in one step", w.Name(), i)
		}
	}
	T := Steps(l, n)
	nd := l * n
	s := &Schedule{
		Net: w, L: l, N: n, T: T,
		Fwd: make([]int, nd), Mid: make([]int, nd), Ret: make([]int, nd),
		FwdGen: make([]int, nd), MidGen: make([]int, nd), RetGen: make([]int, nd),
	}
	// Group-1 dimensions: N_k at step 1.
	for k := 1; k <= n; k++ {
		j := k
		s.Mid[j-1] = 1
		s.MidGen[j-1] = k - 1
		s.FwdGen[j-1], s.RetGen[j-1] = -1, -1
	}
	// Groups 2..l.
	for i := 2; i <= l; i++ {
		type dim struct{ k, b int }
		dims := make([]dim, n)
		for k := 1; k <= n; k++ {
			dims[k-1] = dim{k: k, b: 2 + ((i+k-3)%(T-2)+(T-2))%(T-2)}
		}
		sort.Slice(dims, func(a, b int) bool { return dims[a].b < dims[b].b })
		for rank, d := range dims {
			j := (i-1)*n + d.k
			s.Fwd[j-1] = rank + 1
			s.Mid[j-1] = d.b
			s.Ret[j-1] = T - n + rank + 1
			s.FwdGen[j-1] = w.BringToFront(i)[0]
			s.MidGen[j-1] = d.k - 1
			s.RetGen[j-1] = w.RestoreFromFront(i)[0]
		}
	}
	return s, nil
}

// Verify checks every constraint of the all-port model:
//   - each dimension's transmissions are ordered Fwd < Mid < Ret (group-1
//     dimensions have only Mid);
//   - at every step each generator (directed link type) is used at most
//     once;
//   - every transmission falls inside [1, T].
func (s *Schedule) Verify() error {
	type slot struct{ step, gen int }
	used := make(map[slot]int)
	claim := func(step, gen, j int) error {
		if step < 1 || step > s.T {
			return fmt.Errorf("schedule: dim %d transmission at step %d outside [1,%d]", j, step, s.T)
		}
		if prev, ok := used[slot{step, gen}]; ok {
			return fmt.Errorf("schedule: generator %s used by dims %d and %d at step %d",
				s.Net.Gens()[gen].Name, prev, j, step)
		}
		used[slot{step, gen}] = j
		return nil
	}
	n := s.N
	for j := 1; j <= s.L*n; j++ {
		idx := j - 1
		if j <= n {
			if s.Fwd[idx] != 0 || s.Ret[idx] != 0 {
				return fmt.Errorf("schedule: group-1 dim %d has super steps", j)
			}
			if err := claim(s.Mid[idx], s.MidGen[idx], j); err != nil {
				return err
			}
			continue
		}
		if !(s.Fwd[idx] < s.Mid[idx] && s.Mid[idx] < s.Ret[idx]) {
			return fmt.Errorf("schedule: dim %d not ordered: %d,%d,%d", j, s.Fwd[idx], s.Mid[idx], s.Ret[idx])
		}
		if err := claim(s.Fwd[idx], s.FwdGen[idx], j); err != nil {
			return err
		}
		if err := claim(s.Mid[idx], s.MidGen[idx], j); err != nil {
			return err
		}
		if err := claim(s.Ret[idx], s.RetGen[idx], j); err != nil {
			return err
		}
	}
	return nil
}

// LinkTypes returns the number of directed link types per node: n nucleus
// generators plus the distinct super-generators.
func (s *Schedule) LinkTypes() int { return s.N + s.Net.NumSupers() }

// Utilization returns the per-step fraction of busy link types and the
// average over all steps.  Figure 1b's caption reports full use during
// steps 1-5 and 93% average for (l,n) = (5,3) on a complete-CN-style
// network.
func (s *Schedule) Utilization() (perStep []float64, avg float64) {
	busy := make([]int, s.T+1)
	count := func(step int) {
		if step >= 1 {
			busy[step]++
		}
	}
	for j := 0; j < s.L*s.N; j++ {
		count(s.Mid[j])
		if s.Fwd[j] > 0 {
			count(s.Fwd[j])
			count(s.Ret[j])
		}
	}
	links := s.LinkTypes()
	perStep = make([]float64, s.T)
	total := 0
	for t := 1; t <= s.T; t++ {
		perStep[t-1] = float64(busy[t]) / float64(links)
		total += busy[t]
	}
	avg = float64(total) / float64(links*s.T)
	return perStep, avg
}

// Render prints the schedule as a Figure-1-style table: one row per time
// step, one column per HPN dimension, each cell naming the generator used.
func (s *Schedule) Render() string {
	gens := s.Net.Gens()
	name := func(gi int) string {
		n := gens[gi].Name
		return strings.TrimPrefix(n, "N:")
	}
	nd := s.L * s.N
	colw := 5
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s", "")
	for j := 1; j <= nd; j++ {
		fmt.Fprintf(&b, "%*s", colw, fmt.Sprintf("j=%d", j))
	}
	b.WriteByte('\n')
	for t := 1; t <= s.T; t++ {
		fmt.Fprintf(&b, "Step %-3d", t)
		for j := 0; j < nd; j++ {
			cell := "-"
			switch t {
			case s.Fwd[j]:
				cell = name(s.FwdGen[j])
			case s.Mid[j]:
				cell = name(s.MidGen[j])
			case s.Ret[j]:
				cell = name(s.RetGen[j])
				if s.RetGen[j] == s.FwdGen[j] {
					cell += "" // involution: same link both ways
				}
			}
			fmt.Fprintf(&b, "%*s", colw, cell)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
