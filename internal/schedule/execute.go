package schedule

import (
	"fmt"

	"ipg/internal/emul"
	"ipg/internal/ipg"
)

// Execute runs the schedule on a materialized super-IPG: every node starts
// one packet per HPN dimension, the scheduled transmissions move the
// packets along the generator links step by step, and after T steps every
// dimension-j packet originating at node v must sit exactly on v's
// dimension-j HPN neighbor.  This verifies Theorem 3.8 end to end — not
// just the resource constraints (see Verify) but the actual all-port data
// movement, including the self-loop steps where a generator fixes a node's
// label and no physical transmission occurs.
func (s *Schedule) Execute(g *ipg.Graph) error {
	if g.N() == 0 {
		return fmt.Errorf("schedule: empty graph")
	}
	nd := s.L * s.N
	n := g.N()
	// pos[j*n+v] is the current node of the dimension-(j+1) packet that
	// originated at node v; one flat array instead of a row per dimension.
	pos := make([]int32, nd*n)
	for j := 0; j < nd; j++ {
		for v := 0; v < n; v++ {
			//lint:ignore indextrunc node ids are < g.N() <= ipg.MaxNodes (1<<22)
			pos[j*n+v] = int32(v)
		}
	}
	move := func(j, gen int) {
		p := pos[j*n : (j+1)*n]
		for v := range p {
			p[v] = g.Port(int(p[v]), gen)
		}
	}
	for t := 1; t <= s.T; t++ {
		for j := 0; j < nd; j++ {
			switch t {
			case s.Fwd[j]:
				move(j, s.FwdGen[j])
			case s.Mid[j]:
				move(j, s.MidGen[j])
			case s.Ret[j]:
				move(j, s.RetGen[j])
			}
		}
	}
	for j := 0; j < nd; j++ {
		for v := 0; v < g.N(); v++ {
			want, err := emul.HPNNeighbor(s.Net, g.Label(v), j+1)
			if err != nil {
				return err
			}
			wantID := g.NodeID(want)
			if wantID < 0 {
				return fmt.Errorf("schedule: HPN neighbor of node %d missing from graph", v)
			}
			if int(pos[j*g.N()+v]) != wantID {
				return fmt.Errorf("schedule: dim-%d packet from node %d landed on %d, want %d",
					j+1, v, pos[j*g.N()+v], wantID)
			}
		}
	}
	return nil
}
