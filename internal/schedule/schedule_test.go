package schedule

import (
	"math"
	"strings"
	"testing"

	"ipg/internal/nucleus"
	"ipg/internal/superipg"
)

func TestFigure1aShape(t *testing.T) {
	// Figure 1a: 12-dimensional HPN(4, G) on a super-IPG with l=4, n=3:
	// the schedule completes in max(2n, l+1) = 6 steps.
	w := superipg.HSN(4, nucleus.Hypercube(3))
	s, err := Build(w)
	if err != nil {
		t.Fatal(err)
	}
	if s.T != 6 {
		t.Fatalf("T = %d, want 6", s.T)
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
	// 12 dimensions: 3 group-1 (N only) + 9 with triples = 3 + 27 = 30
	// transmissions over 6 steps x 6 link types.
	_, avg := s.Utilization()
	if want := 30.0 / 36.0; math.Abs(avg-want) > 1e-12 {
		t.Errorf("avg utilization = %v, want %v", avg, want)
	}
}

func TestFigure1bShape(t *testing.T) {
	// Figure 1b: 15-dimensional HPN(5, G) on a super-IPG with l=5, n=3:
	// 6 steps, "links fully used during steps 1 to 5, and 93% used on
	// average" (39 transmissions / 42 slots).
	for _, w := range []*superipg.Network{
		superipg.HSN(5, nucleus.Hypercube(3)),
		superipg.CompleteCN(5, nucleus.Hypercube(3)),
		superipg.SFN(5, nucleus.Hypercube(3)),
	} {
		s, err := Build(w)
		if err != nil {
			t.Fatalf("%s: %v", w.Name(), err)
		}
		if s.T != 6 {
			t.Fatalf("%s: T = %d, want 6", w.Name(), s.T)
		}
		if err := s.Verify(); err != nil {
			t.Fatalf("%s: %v", w.Name(), err)
		}
		perStep, avg := s.Utilization()
		for step := 0; step < 5; step++ {
			if perStep[step] != 1.0 {
				t.Errorf("%s: step %d utilization %v, want fully used", w.Name(), step+1, perStep[step])
			}
		}
		if want := 39.0 / 42.0; math.Abs(avg-want) > 1e-12 {
			t.Errorf("%s: avg utilization = %v, want %v (93%%)", w.Name(), avg, want)
		}
	}
}

func TestTheorem38Sweep(t *testing.T) {
	// The schedule must verify and meet max(2n, l+1) for a sweep of (l,n).
	for n := 1; n <= 6; n++ {
		nuc := nucleus.Hypercube(n)
		for l := 2; l <= 8; l++ {
			for _, w := range []*superipg.Network{
				superipg.HSN(l, nuc),
				superipg.CompleteCN(l, nuc),
				superipg.SFN(l, nuc),
			} {
				s, err := Build(w)
				if err != nil {
					t.Fatalf("%s: %v", w.Name(), err)
				}
				if want := Steps(l, n); s.T != want {
					t.Fatalf("%s: T = %d, want %d", w.Name(), s.T, want)
				}
				if err := s.Verify(); err != nil {
					t.Fatalf("%s (l=%d n=%d): %v", w.Name(), l, n, err)
				}
			}
		}
	}
}

func TestRingCNRejected(t *testing.T) {
	w := superipg.RingCN(4, nucleus.Hypercube(2))
	if _, err := Build(w); err == nil {
		t.Error("ring-CN(4) should be rejected: cannot bring group 3 to front in one step")
	}
}

func TestVerifyCatchesConflicts(t *testing.T) {
	w := superipg.HSN(3, nucleus.Hypercube(2))
	s, err := Build(w)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt: force two dims onto the same generator at the same step.
	s.Mid[2] = s.Mid[4]
	s.MidGen[2] = s.MidGen[4]
	if err := s.Verify(); err == nil {
		t.Error("Verify should catch a double-booked generator")
	}
	// Corrupt ordering.
	s2, _ := Build(w)
	s2.Ret[3] = s2.Fwd[3]
	if err := s2.Verify(); err == nil {
		t.Error("Verify should catch broken ordering")
	}
	// Out of range.
	s3, _ := Build(w)
	s3.Mid[0] = s3.T + 5
	if err := s3.Verify(); err == nil {
		t.Error("Verify should catch out-of-range steps")
	}
}

func TestRenderContainsGenerators(t *testing.T) {
	w := superipg.HSN(4, nucleus.Hypercube(3))
	s, _ := Build(w)
	out := s.Render()
	if !strings.Contains(out, "T2") || !strings.Contains(out, "d3") {
		t.Errorf("render missing generator names:\n%s", out)
	}
	if !strings.Contains(out, "Step 6") {
		t.Error("render missing final step")
	}
	if strings.Contains(out, "Step 7") {
		t.Error("render has too many steps")
	}
}

func TestStepsFormula(t *testing.T) {
	cases := []struct{ l, n, want int }{
		{4, 3, 6}, {5, 3, 6}, {2, 1, 3}, {8, 3, 9}, {3, 4, 8},
	}
	for _, c := range cases {
		if got := Steps(c.l, c.n); got != c.want {
			t.Errorf("Steps(%d,%d) = %d, want %d", c.l, c.n, got, c.want)
		}
	}
}

func TestAllTransmissionsPresent(t *testing.T) {
	w := superipg.CompleteCN(6, nucleus.Hypercube(4))
	s, err := Build(w)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
	total := 0
	for j := 0; j < s.L*s.N; j++ {
		if s.Mid[j] == 0 {
			t.Fatalf("dim %d missing nucleus step", j+1)
		}
		total++
		if j >= s.N {
			if s.Fwd[j] == 0 || s.Ret[j] == 0 {
				t.Fatalf("dim %d missing super steps", j+1)
			}
			total += 2
		}
	}
	if want := s.N + 3*s.N*(s.L-1); total != want {
		t.Errorf("transmissions = %d, want %d", total, want)
	}
}
