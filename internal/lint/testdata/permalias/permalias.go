// Package permalias is a fixture for the permalias analyzer.  Lines
// expecting a diagnostic carry a want comment with a message pattern.
package permalias

// Perm mirrors the repo's perm.Perm: a named permutation slice.
type Perm []int

// Label mirrors the repo's perm.Label.
type Label []byte

// Clone returns a private copy of p.
func (p Perm) Clone() Perm {
	out := make(Perm, len(p))
	copy(out, p)
	return out
}

type router struct {
	seed Perm
}

var lastLabel Label

var history []Perm

// Apply writes into the caller's slice without declaring in-place intent.
func Apply(p Perm) {
	p[0] = 1 // want "writes into caller-owned slice"
}

// Shuffle mutates a heuristically-named bare byte slice.
func Shuffle(word []byte) {
	word[0] = 'a' // want "writes into caller-owned slice"
}

// Overwrite mutates via the copy builtin.
func Overwrite(p Perm, src Perm) {
	copy(p, src) // want "copies into caller-owned slice"
}

// Retain stores the caller's slice into longer-lived state.
func (r *router) Retain(p Perm) {
	r.seed = p // want "stores caller-owned slice"
}

// RetainGlobal stores the caller's slice into a package-level variable.
func RetainGlobal(label Label) {
	lastLabel = label // want "stores caller-owned slice"
}

// RetainAppend stores the parameter whole as a slice element.
func RetainAppend(p Perm) {
	history = append(history, p) // want "stores caller-owned slice"
}

// ApplyInto declares in-place intent in its name: clean.
func ApplyInto(p Perm) {
	p[0] = 2
}

// Fill writes through a dst-named destination parameter: clean.
func Fill(dst Perm, v int) {
	dst[0] = v
}

// Rebind takes a private copy before writing: clean.
func Rebind(p Perm) {
	p = p.Clone()
	p[0] = 3
}

// RetainClone clones before storing: clean.
func (r *router) RetainClone(p Perm) {
	r.seed = p.Clone()
}

// Format copies via a string conversion: clean.
func Format(label Label) string {
	return string(label)
}

// mutate is unexported: outside the analyzer's API contract.
func mutate(p Perm) {
	p[0] = 9
}

var _ = mutate
