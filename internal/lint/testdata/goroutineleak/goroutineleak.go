// Package goroutineleak is a fixture for the goroutineleak analyzer.
// Lines expecting a diagnostic carry a want comment with a message pattern.
package goroutineleak

import (
	"sync"
	"time"
)

// Leak starts a goroutine with no join anywhere in the function.
func Leak(xs []int) {
	go func() { // want "never joins"
		for i := range xs {
			xs[i]++
		}
	}()
}

// Joined follows the wg.Add / go / wg.Wait worker-pool idiom: clean.
func Joined(xs []int) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := range xs {
			xs[i]++
		}
	}()
	wg.Wait()
}

// ChannelJoined collects the result over a channel: clean.
func ChannelJoined(xs []int) int {
	ch := make(chan int)
	go func() {
		sum := 0
		for _, x := range xs {
			sum += x
		}
		ch <- sum
	}()
	return <-ch
}

// RangeJoined drains a channel the worker closes: clean.
func RangeJoined(xs []int) int {
	ch := make(chan int, len(xs))
	go func() {
		for _, x := range xs {
			ch <- x
		}
		close(ch)
	}()
	total := 0
	for v := range ch {
		total += v
	}
	return total
}

// NestedLeak joins its outer goroutine, but the literal it spawns starts
// a second goroutine it never joins; each `go` is judged against its own
// innermost enclosing function.
func NestedLeak(done chan struct{}) {
	go func() {
		go sideEffect() // want "never joins"
		done <- struct{}{}
	}()
	<-done
}

func sideEffect() {}

// PoolJoined is the bounded worker-pool shape the serving layer uses: a
// semaphore channel caps concurrency and a select joins the detached
// build.  The spawning function contains both the `go` and a select that
// receives the completion signal: clean.
func PoolJoined(sem chan struct{}, abort chan struct{}, xs []int) int {
	done := make(chan int, 1)
	sem <- struct{}{}
	go func() {
		defer func() { <-sem }()
		sum := 0
		for _, x := range xs {
			sum += x
		}
		done <- sum
	}()
	select {
	case v := <-done:
		return v
	case <-abort:
		return 0
	}
}

// SemaphoreLeak acquires a slot and spawns the worker, but every join
// lives inside the spawned literal itself — the spawning function never
// receives, so an abandoned request leaks the goroutine.
func SemaphoreLeak(sem chan struct{}, xs []int) {
	results := make(chan int, 1)
	sem <- struct{}{}
	go func() { // want "never joins"
		defer func() { <-sem }()
		sum := 0
		for _, x := range xs {
			sum += x
		}
		select {
		case results <- sum:
		default:
		}
	}()
}

// RetryBackoffJoined is the bounded retry-with-backoff shape the serving
// layer uses: the attempt runs detached so the caller can abandon it,
// and a select joins the attempt, the backoff timer, or the stop signal:
// clean.
func RetryBackoffJoined(stop chan struct{}, backoff <-chan time.Time, xs []int) int {
	attempt := make(chan int, 1)
	go func() {
		sum := 0
		for _, x := range xs {
			sum += x
		}
		attempt <- sum
	}()
	select {
	case v := <-attempt:
		return v
	case <-backoff:
		return 0
	case <-stop:
		return -1
	}
}

// HalfOpenProbeJoined runs a circuit-breaker probe behind its cooldown
// timer and receives the verdict in the spawning function: clean.
func HalfOpenProbeJoined(cooldown time.Duration, probe func() bool) bool {
	verdict := make(chan bool, 1)
	go func() {
		timer := time.NewTimer(cooldown)
		defer timer.Stop()
		<-timer.C
		verdict <- probe()
	}()
	return <-verdict
}

// HalfOpenProbeLeak schedules the probe after the cooldown but the
// spawning function never receives anything: each breaker trip leaks one
// goroutine parked on the timer.
func HalfOpenProbeLeak(cooldown time.Duration, probe func()) {
	go func() { // want "never joins"
		timer := time.NewTimer(cooldown)
		<-timer.C
		probe()
	}()
}

// DoubleDispatchJoined fans two workers out over the pool and joins both
// through one result channel: clean.
func DoubleDispatchJoined(sem chan struct{}, xs, ys []int) int {
	done := make(chan int, 2)
	for _, s := range [][]int{xs, ys} {
		s := s
		sem <- struct{}{}
		go func() {
			defer func() { <-sem }()
			sum := 0
			for _, x := range s {
				sum += x
			}
			done <- sum
		}()
	}
	return <-done + <-done
}
