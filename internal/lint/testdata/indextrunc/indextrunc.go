// Package indextrunc is a fixture for the indextrunc analyzer.  Lines
// expecting a diagnostic carry a want comment with a message pattern.
package indextrunc

import (
	"errors"
	"math"
)

// NodeID is a named narrow type; conversions to it are policed via the
// underlying int32.
type NodeID int32

// Unguarded narrows a vertex count with no bounds check.
func Unguarded(n int) int32 {
	return int32(n) // want "int -> int32 conversion"
}

// Unguarded16 narrows a wide unsigned count to int16.
func Unguarded16(d uint64) int16 {
	return int16(d) // want "uint64 -> int16 conversion"
}

// UnguardedU32 narrows a uint to uint32.
func UnguardedU32(n uint) uint32 {
	return uint32(n) // want "uint -> uint32 conversion"
}

// UnguardedNamed converts to a named narrow type.
func UnguardedNamed(n int) NodeID {
	return NodeID(n) // want "int -> int32 conversion"
}

// UnguardedLoop converts a loop index inside an append.
func UnguardedLoop(xs []int) []int32 {
	out := make([]int32, 0, len(xs))
	for i := range xs {
		out = append(out, int32(i)) // want "int -> int32 conversion"
	}
	return out
}

// Guarded compares against math.MaxInt32 and errors instead of wrapping:
// clean.
func Guarded(n int) (int32, error) {
	if n > math.MaxInt32 {
		return 0, errors.New("count overflows int32")
	}
	return int32(n), nil
}

// checkNodeCount is a guard helper the analyzer recognizes by name.
func checkNodeCount(n int) error {
	if n < 0 || n > 1<<31-1 {
		return errors.New("bad node count")
	}
	return nil
}

// GuardedByHelper delegates the bound to a Check*-style helper: clean.
func GuardedByHelper(n int) (int32, error) {
	if err := checkNodeCount(n); err != nil {
		return 0, err
	}
	return int32(n), nil
}

const fits int64 = 1 << 20

// WideConst converts a typed constant that provably fits: clean.
func WideConst() int32 {
	return int32(fits)
}

// AlreadyNarrow converts from a type that is not a wide index: clean.
func AlreadyNarrow(v int32) int64 {
	return int64(v)
}
