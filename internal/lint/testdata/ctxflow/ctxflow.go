// Package ctxflow exercises the interprocedural cancellation analyzer:
// entry points by name and by handler signature, reachability through the
// call graph, the two diagnostic flavors (no context in scope vs. context
// in scope but never consulted), and the directive escape hatch.
package ctxflow

import "context"

// G stands in for a graph artifact: loops bounded by the integer field N
// are vertex-scale loops to the analyzer's taint seeding.
type G struct{ N int }

// RunSweep is an entry point by prefix; its loop scales with g.N and no
// context is anywhere in scope.
func RunSweep(g *G) int {
	sum := 0
	for i := 0; i < g.N; i++ { // want "RunSweep and loops over vertex/round-scale data with no context"
		sum += i
	}
	return sum + helper(g)
}

// helper is not an entry itself but inherits reachability from RunSweep
// through the call graph.
func helper(g *G) int {
	total := 0
	for i := 0; i < g.N; i++ { // want "helper is reachable from .*RunSweep"
		total++
	}
	return total
}

// SweepCtx has a context in scope but the scale loop never consults it.
func SweepCtx(ctx context.Context, g *G) int {
	sum := 0
	for i := 0; i < g.N; i++ { // want "never consults the in-scope context"
		sum++
	}
	_ = ctx
	return sum
}

// SweepPolledCtx checks the context inside the loop: no finding.
func SweepPolledCtx(ctx context.Context, g *G) int {
	sum := 0
	for i := 0; i < g.N; i++ {
		if ctx.Err() != nil {
			return sum
		}
		sum++
	}
	return sum
}

// RunDrain ranges over an []int32 frontier queue, a scale slice by type.
func RunDrain(queue []int32) int {
	total := 0
	for range queue { // want "RunDrain and loops over vertex/round-scale data"
		total++
	}
	return total
}

// RunBounded documents why its loop needs no cancellation: the directive
// cites the O(log N) bound.
func RunBounded(g *G) int {
	sum := 0
	//lint:ignore ctxflow fixture: the loop counts address bits, at most ~31 iterations with no per-vertex work
	for i := 1; i < g.N; i *= 2 {
		sum++
	}
	return sum
}

// idle has a scale loop but is neither an entry point nor reachable from
// one, so cancellation cannot arrive anyway: no finding.
func idle(g *G) int {
	n := 0
	for i := 0; i < g.N; i++ {
		n++
	}
	return n
}
