package ctxflow

// Entry points and functions declared in _test.go files are exempt:
// benchmark and test drivers loop over scale data on purpose and are
// cancelled by the test framework's own deadline.  Nothing in this file
// may produce a finding.

// RunFromTest would be an entry by name if it lived in a production file.
func RunFromTest(g *G) int {
	n := 0
	for i := 0; i < g.N; i++ {
		n++
	}
	return n
}
