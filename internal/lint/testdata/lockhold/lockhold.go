// Package lockhold exercises the held-lock-across-blocking-operation
// analyzer: direct blocking (sleep, send, default-less select), the
// interprocedural may-block summary, and the idioms that must stay clean
// (snapshot-then-write, in-memory buffers, select with default, spawning
// the blocking work on another goroutine).
package lockhold

import (
	"bytes"
	"fmt"
	"io"
	"sync"
	"time"
)

// S is a stats sink guarded by a mutex, with a notification channel.
type S struct {
	mu sync.Mutex
	ch chan int
	n  int
}

// SleepUnderLock stalls every other accessor for the full sleep.
func (s *S) SleepUnderLock() {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want "s.mu is held across time.Sleep"
	s.mu.Unlock()
}

// SendUnderLock holds the lock across a possibly unbuffered send: the
// deferred unlock only runs after the send completes.
func (s *S) SendUnderLock(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n += v
	s.ch <- v // want "held across a channel send"
}

// WaitRecv parks on a default-less select while holding the lock.
func (s *S) WaitRecv() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want "held across a select with no default"
	case v := <-s.ch:
		return v
	}
}

// flush writes to an interface-typed destination, which may be a network
// peer: it carries a may-block summary.
func (s *S) flush(w io.Writer) {
	fmt.Fprintf(w, "n=%d\n", s.n)
}

// WriteUnderLock reaches the blocking write through a call, proving the
// summary propagates along synchronous call edges.
func (s *S) WriteUnderLock(w io.Writer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flush(w) // want "held across a call to .*flush"
}

// SnapshotThenWrite copies under the lock and writes after releasing it:
// the idiom the analyzer pushes toward.  No finding.
func (s *S) SnapshotThenWrite(w io.Writer) {
	s.mu.Lock()
	n := s.n
	s.mu.Unlock()
	fmt.Fprintf(w, "n=%d\n", n)
}

// BufferWrite targets an in-memory buffer: the write cannot block.
func (s *S) BufferWrite(buf *bytes.Buffer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fmt.Fprintf(buf, "n=%d\n", s.n)
}

// Poll drains without committing to block: a select with a default case
// is fine under the lock.
func (s *S) Poll() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case v := <-s.ch:
		s.n += v
	default:
	}
}

// SpawnUnderLock starts the blocking work on another goroutine, so the
// lock is not held across it.
func (s *S) SpawnUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n++
	go func() {
		time.Sleep(time.Millisecond)
	}()
}

// SuppressedSleep cites the invariant that makes the hold harmless.
func (s *S) SuppressedSleep() {
	s.mu.Lock()
	//lint:ignore lockhold fixture: warmup runs before any other goroutine can reach this mutex
	time.Sleep(time.Millisecond)
	s.mu.Unlock()
}
