// Package cg is the fixture for the call-graph golden test and the CFG
// shape tests: a small web covering every resolution mode (direct call,
// method call, func-value binding through a struct field, immediate
// literal, interface dispatch) plus functions whose bodies exercise each
// CFG lowering.
package cg

// Ops carries a func-valued field so the binding-based resolution has
// something to chase.
type Ops struct{ hook func() }

// Top fans out through every resolution mode.
func Top() {
	mid()
	o := Ops{hook: leaf}
	o.run()
	func() { leaf() }()
}

func mid() { leaf() }

func leaf() {}

func (o Ops) run() { o.hook() }

// Stringer is implemented by exactly one type, so the interface call in
// Through resolves to a single edge.
type Stringer interface{ Str() string }

// A implements Stringer.
type A struct{}

// Str implements Stringer.
func (A) Str() string { return "a" }

// Through dispatches through the interface.
func Through(s Stringer) string { return s.Str() }

// IfShape is a branch with no else.
func IfShape(a int) int {
	if a > 0 {
		a++
	}
	return a
}

// LoopShape is the classic three-clause for loop with a back edge.
func LoopShape(n int) int {
	sum := 0
	for i := 0; i < n; i++ {
		sum += i
	}
	return sum
}

// SelectShape yields a marker node plus one block per clause.
func SelectShape(ch chan int) int {
	select {
	case v := <-ch:
		return v
	default:
		return 0
	}
}

// DeferShape registers one deferred call.
func DeferShape() {
	defer leaf()
	leaf()
}
