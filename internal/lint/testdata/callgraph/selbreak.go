package cg

// SelBreak: break inside a select clause exits the select only; the loop
// continues to the statement after the select.
func SelBreak(ch chan int) int {
	n := 0
	for {
		select {
		case v := <-ch:
			if v == 0 {
				break
			}
			n += v
		}
		n++
		if n > 10 {
			return n
		}
	}
}
