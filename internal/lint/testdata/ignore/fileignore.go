//lint:file-ignore indextrunc fixture: every conversion in this file is bounded by construction

package ignore

// FileWideOne would be flagged without the file-ignore above.
func FileWideOne(n int) int32 {
	return int32(n)
}

// FileWideTwo proves the suppression reaches the whole file, not one line.
func FileWideTwo(n uint64) uint32 {
	return uint32(n)
}
