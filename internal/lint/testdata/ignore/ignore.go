// Package ignore exercises the //lint:ignore suppression directives under
// the full analyzer suite.  Suppressed sites carry no want comment; a
// malformed directive must itself be reported (the `// want:next` form
// attaches the expectation to the following line, since a directive
// comment cannot share its line with a want comment).
package ignore

import "sync"

// Truncate is suppressed by a same-line directive.
func Truncate(n int) int32 {
	return int32(n) //lint:ignore indextrunc fixture: callers guarantee n < 1<<22
}

// TruncateAbove is suppressed by an own-line directive on the line above.
func TruncateAbove(n int) int32 {
	//lint:ignore indextrunc fixture: callers guarantee n < 1<<22
	return int32(n)
}

// TruncateUnsuppressed has no directive and stays flagged.
func TruncateUnsuppressed(n int) int32 {
	return int32(n) // want "without a bounds guard"
}

// TruncateBadDirective's directive lacks the mandatory reason, so it is
// reported and suppresses nothing.
func TruncateBadDirective(n int) int32 {
	// want:next "needs an analyzer list and a reason"
	//lint:ignore indextrunc
	return int32(n) // want "without a bounds guard"
}

// The analyzer list must name real analyzers.
// want:next "unknown analyzer nosuchcheck"
//lint:ignore nosuchcheck fixture: misspelled analyzer name

// MutateSuppressed writes into a caller-owned slice under an own-line
// directive.
func MutateSuppressed(label []byte) {
	//lint:ignore permalias fixture: label is scratch space by caller contract
	label[0] = 1
}

// CommaList triggers permalias and indextrunc on the same line; one
// comma-list directive suppresses both.
func CommaList(label []byte, n int) {
	//lint:ignore permalias,indextrunc fixture: bounded scratch write
	label[0] = byte(int32(n))
}

// StaleDirective carries a well-formed directive whose analyzer never
// fires on the covered line, so the run reports the directive itself.
func StaleDirective(n int) int {
	// want:next "unused lint:ignore directive for goroutineleak"
	//lint:ignore goroutineleak fixture: nothing below spawns a goroutine
	return n
}

// SpawnHandedOff hands the WaitGroup to the caller, which joins after all
// spawns; the intraprocedural goroutineleak analyzer needs the documented
// ignore.
func SpawnHandedOff(wg *sync.WaitGroup, xs []int) {
	wg.Add(1)
	//lint:ignore goroutineleak the caller owns wg and joins after all spawns
	go func() {
		defer wg.Done()
		for i := range xs {
			xs[i] = 0
		}
	}()
}
