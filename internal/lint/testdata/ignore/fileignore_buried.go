// A file-ignore buried in the file body is reported instead of silently
// honored: it would read as documentation of one function while covering
// the whole file.
package ignore

// Buried stays flagged because the directive below is rejected.
func Buried(n int) int32 {
	return int32(n) // want "without a bounds guard"
}

// want:next "file-ignore directive must sit in the file header"
//lint:file-ignore indextrunc fixture: too late, this sits in the file body
