// A file-ignore placed below the import block is still in the file
// header (anywhere before the first non-import declaration), so it is
// honored file-wide.
package ignore

import "fmt"

//lint:file-ignore indextrunc fixture: everything in this file is bounded by construction

// BelowImports would be flagged without the header directive above.
func BelowImports(n int) int32 {
	_ = fmt.Sprint(n)
	return int32(n)
}
