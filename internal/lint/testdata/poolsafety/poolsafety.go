// Package poolsafety exercises the Get/PutScratch pairing analyzer: leak
// on a return path, double put, use after put, defer/explicit double
// registration, re-get while held, and the append-grows-the-pooled-buffer
// escape with its write-back fix.
package poolsafety

// Scratch mirrors the topo scratch pool's shape: the analyzer matches the
// GetScratch/PutScratch names plus the returned type name.
type Scratch struct {
	Dist  []int32
	Queue []int32
}

var pool []*Scratch

// GetScratch hands out a scratch sized for n vertices.
func GetScratch(n int) *Scratch {
	return &Scratch{Dist: make([]int32, n), Queue: make([]int32, 0, n)}
}

// PutScratch returns s to the pool.
func PutScratch(s *Scratch) {
	pool = append(pool, s)
}

// Leak never puts the scratch back; the finding anchors at the get.
func Leak(n int) int32 {
	s := GetScratch(n) // want "may reach a return without PutScratch"
	s.Dist[0] = 1
	return s.Dist[0]
}

// LeakOnOnePath misses the put only on the early return, which is enough.
func LeakOnOnePath(n int, flag bool) {
	s := GetScratch(n) // want "may reach a return without PutScratch"
	if flag {
		return
	}
	PutScratch(s)
}

// BranchPut releases on every path: no finding.
func BranchPut(n int, flag bool) {
	s := GetScratch(n)
	if flag {
		PutScratch(s)
		return
	}
	PutScratch(s)
}

// DoublePut returns the same scratch twice.
func DoublePut(n int) {
	s := GetScratch(n)
	PutScratch(s)
	PutScratch(s) // want "double PutScratch"
}

// UseAfterPut touches the buffers after the pool may have re-issued them.
func UseAfterPut(n int) int32 {
	s := GetScratch(n)
	PutScratch(s)
	return s.Dist[0] // want "used after PutScratch"
}

// DeferAndPut registers a deferred put and then also puts explicitly.
func DeferAndPut(n int) {
	s := GetScratch(n)
	defer PutScratch(s)
	PutScratch(s) // want "explicit PutScratch for s with a deferred PutScratch"
}

// Reget grabs a second scratch into the same variable while the first is
// still held, leaking the first.
func Reget(n int) {
	s := GetScratch(n)
	s = GetScratch(n) // want "reassigned by GetScratch while still held"
	PutScratch(s)
}

// Grow appends through an alias of the pooled queue and never writes the
// grown slice back, so the pool keeps the stale pre-append buffer.
func Grow(n int) {
	s := GetScratch(n)
	defer PutScratch(s)
	q := s.Queue
	q = append(q, 1) // want "append may grow q past the pooled buffer"
	_ = q
}

// GrowWriteBack stores the grown slice back before the put: no finding.
func GrowWriteBack(n int) {
	s := GetScratch(n)
	defer PutScratch(s)
	q := s.Queue
	q = append(q, 1)
	s.Queue = q
}

// GrowSuppressed cites the capacity invariant instead of writing back.
func GrowSuppressed(n int) {
	s := GetScratch(n)
	defer PutScratch(s)
	q := s.Queue
	//lint:ignore poolsafety fixture: at most one push ever lands in a queue allocated with capacity n >= 1
	q = append(q, 1)
	_ = q
}

// FillParam operates on a caller-owned scratch: parameters are untracked
// here because the caller's own analysis owns the get/put pairing.
func FillParam(s *Scratch) {
	s.Dist[0] = 1
	PutScratch(s)
}
