// Package adjbuild is a fixture for the adjbuild analyzer.  Lines
// expecting a diagnostic carry a want comment with a message pattern.
package adjbuild

// Net models a simulator struct that regrew a per-row adjacency field.
type Net struct {
	Ports [][]int32 // want "adjacency outside"
	Caps  [][]float64
}

// BuildRows allocates a per-row adjacency table.
func BuildRows(n int) [][]int32 { // want "adjacency outside"
	rows := make([][]int32, n) // want "adjacency outside"
	for i := range rows {
		rows[i] = append(rows[i], int32(0))
	}
	return rows
}

// Literal spells the type in a composite literal.
func Literal() interface{} {
	return [][]int32{{1, 2}, {3}} // want "adjacency outside"
}

// FlatOK is the sanctioned shape: one strided []int32 slab.
func FlatOK(n, stride int) []int32 {
	return make([]int32, n*stride)
}

// OtherNestingOK leaves non-int32 nested slices alone.
func OtherNestingOK(n int) [][]int64 {
	return make([][]int64, n)
}

// FixedLenOK leaves fixed-size arrays alone ([2]int32 is a pair key, not
// an adjacency row).
func FixedLenOK() [][2]int32 {
	return [][2]int32{{1, 2}}
}

// Suppressed shows the escape hatch for a justified row table.
func Suppressed(n int) [][]int32 { // want "adjacency outside"
	//lint:ignore adjbuild per-row layout required by the external trace format
	out := make([][]int32, n)
	return out
}
