// Package errdrop is a fixture for the errdrop analyzer.  Lines expecting
// a diagnostic carry a want comment with a message pattern.
package errdrop

import "errors"

// Sim is a miniature simulator whose Step reports livelock via its error.
type Sim struct{ rounds int }

// Step advances one round.
func (s *Sim) Step() error {
	s.rounds++
	if s.rounds > 100 {
		return errors.New("livelock")
	}
	return nil
}

// RunRounds drives Step n times, returning how far it got.
func (s *Sim) RunRounds(n int) (int, error) {
	for i := 0; i < n; i++ {
		if err := s.Step(); err != nil {
			return i, err
		}
	}
	return n, nil
}

// RouteWord mimics the superipg router entry point.
func RouteWord(from, to string) ([]int, error) {
	if from == to {
		return nil, nil
	}
	return []int{1}, errors.New("unroutable")
}

// DropBare discards a Step error as a bare call statement.
func DropBare(s *Sim) {
	s.Step() // want "result discarded"
}

// DropBlank binds the error result to the blank identifier.
func DropBlank(s *Sim) int {
	n, _ := s.RunRounds(10) // want "assigned to _"
	return n
}

// DropGo loses the error inside a goroutine body.
func DropGo(s *Sim) {
	done := make(chan struct{})
	go func() {
		s.Step() // want "result discarded"
		close(done)
	}()
	<-done
}

// DropGoDirect go's the simulation call itself.
func DropGoDirect(s *Sim) {
	go s.Step() // want "lost in go statement"
}

// DropDefer defers the call, discarding its error at function exit.
func DropDefer(s *Sim) {
	defer s.Step() // want "lost in defer statement"
}

// Handled checks every error: clean.
func Handled(s *Sim) error {
	if _, err := RouteWord("a", "b"); err != nil {
		return err
	}
	return s.Step()
}

// helper returns an error but is not a simulation entry point: clean to
// discard (go vet's job, not ours).
func helper() error { return nil }

// IgnoreHelper discards a non-simulation error: clean here.
func IgnoreHelper() {
	helper()
}
