// Package atomicmix exercises the mixed atomic/plain access analyzer:
// a package counter written both ways, sink-parameter propagation through
// two call layers onto a struct field, and the directive escape hatch for
// provably single-threaded phases.
package atomicmix

import "sync/atomic"

var hits int64

// Record is the atomic side of the counter.
func Record() {
	atomic.AddInt64(&hits, 1)
}

// Load is a correctly paired atomic read: no finding.
func Load() int64 {
	return atomic.LoadInt64(&hits)
}

// Reset races with Record: a plain store to an atomically accessed word.
func Reset() {
	hits = 0 // want "hits is accessed with sync/atomic"
}

// bump is an atomic sink: any address passed to it is atomically
// accessed.
func bump(v *int64) {
	atomic.AddInt64(v, 1)
}

// bump2 forwards its parameter to a sink, so sink-ness propagates.
func bump2(p *int64) {
	bump(p)
}

// C carries a counter field whose address flows into the sink chain.
type C struct {
	n int64
}

// Inc bumps the field atomically through two call layers.
func (c *C) Inc() {
	bump2(&c.n)
}

// Peek reads the field with a plain load that can race with Inc.
func (c *C) Peek() int64 {
	return c.n // want "n is accessed with sync/atomic"
}

var total int64

// Grow feeds total through the sink chain, marking it atomic.
func Grow() {
	bump2(&total)
}

// ResetForTest runs before any worker goroutine exists; the directive
// cites that invariant.
func ResetForTest() {
	//lint:ignore atomicmix fixture: runs single-threaded before any worker goroutine starts
	total = 0
}
