// Package scratchalloc is a fixture for the scratchalloc analyzer.  Lines
// expecting a diagnostic carry a want comment with a message pattern.
package scratchalloc

import "net/http"

// handleRoute is a handler by name: its distance vector and frontier
// bitmap belong in the shared buffer pool.
func handleRoute(n int) []int32 {
	dist := make([]int32, n)      // want "topo.GetScratch"
	_ = make([]uint64, (n+63)/64) // want "topo.GetScratch"
	queue := make([]int32, 0, n)  // want "topo.GetScratch"
	_ = queue
	return dist
}

// ServeMetrics is a handler by signature (http params), regardless of name.
func ServeMetrics(w http.ResponseWriter, r *http.Request, n int) {
	_ = make([]int32, n) // want "topo.GetScratch"
}

// handlerClosure shows that closures inside a handler body are still on
// the request path.
func handleSim(n int) func() []int32 {
	return func() []int32 {
		return make([]int32, n) // want "topo.GetScratch"
	}
}

// buildTable is NOT a handler: construction-time allocation is fine.
func buildTable(n int) []int32 {
	return make([]int32, n)
}

// handleOtherTypes leaves non-scratch element types alone ([]byte response
// bodies, []int index sets).
func handleOtherTypes(n int) {
	_ = make([]byte, n)
	_ = make([]int, n)
	_ = make([]int64, n)
}

// handleFixedOK leaves non-slice makes and fixed arrays alone.
func handleFixedOK() {
	_ = make(map[int32]int32)
	_ = make(chan int32, 4)
}

// handleSuppressed shows the escape hatch for a response-owned slice.
func handleSuppressed(n int) []int32 {
	//lint:ignore scratchalloc the mapped ids are the response payload, not scratch
	out := make([]int32, n)
	return out
}
