package lint

import "testing"

func TestPrintSelBreak(t *testing.T) {
	prog := loadEngineFixture(t)
	f := findFunc(t, prog, "cg.SelBreak")
	t.Log("\n" + prog.CFG(f).String())
}
