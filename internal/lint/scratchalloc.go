package lint

import (
	"go/ast"
	"strings"
)

// ScratchAlloc flags per-request traversal-scratch allocations in serving
// handlers: a `make([]int32, ...)` or `make([]uint64, ...)` inside a
// request handler allocates a distance vector, queue, or frontier bitmap
// on every request, which is exactly the allocation class the shared
// topo.GetScratch / PutScratch pool exists to absorb.  At serving
// concurrency these per-request O(N) buffers dominate the allocation
// profile and put the GC on the request path.
//
// A function counts as a request handler when its name starts with
// "handle"/"Handle" or when it takes an *http.Request or
// http.ResponseWriter parameter.  Allocations that genuinely must be
// fresh per request (e.g. a response-owned slice that outlives the
// handler) are suppressed with a lint:ignore directive and a reason.
var ScratchAlloc = &Analyzer{
	Name: "scratchalloc",
	Doc:  "per-request []int32/[]uint64 scratch allocated in a serve handler instead of the topo buffer pool",
	Run:  runScratchAlloc,
}

// isRequestHandler reports whether fd is a request-serving entry point by
// name or by signature.
func isRequestHandler(fd *ast.FuncDecl) bool {
	if strings.HasPrefix(fd.Name.Name, "handle") || strings.HasPrefix(fd.Name.Name, "Handle") {
		return true
	}
	if fd.Type.Params == nil {
		return false
	}
	for _, field := range fd.Type.Params.List {
		t := field.Type
		if star, ok := t.(*ast.StarExpr); ok {
			t = star.X
		}
		sel, ok := t.(*ast.SelectorExpr)
		if !ok {
			continue
		}
		if x, ok := sel.X.(*ast.Ident); ok && x.Name == "http" &&
			(sel.Sel.Name == "Request" || sel.Sel.Name == "ResponseWriter") {
			return true
		}
	}
	return false
}

func runScratchAlloc(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isRequestHandler(fd) {
				continue
			}
			// Closures nested in the handler body still run per request,
			// so the walk deliberately descends into FuncLits.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := call.Fun.(*ast.Ident)
				if !ok || id.Name != "make" || len(call.Args) < 2 {
					return true
				}
				at, ok := call.Args[0].(*ast.ArrayType)
				if !ok || at.Len != nil {
					return true
				}
				elt, ok := at.Elt.(*ast.Ident)
				if !ok || (elt.Name != "int32" && elt.Name != "uint64") {
					return true
				}
				pass.Reportf(call.Pos(),
					"per-request make([]%s, ...) in handler %s; traversal scratch belongs in the topo.GetScratch/PutScratch pool",
					elt.Name, fd.Name.Name)
				return true
			})
		}
	}
}
