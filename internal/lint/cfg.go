package lint

import (
	"fmt"
	"go/ast"
	"sort"
	"strings"
)

// This file builds a lightweight per-function control-flow graph: basic
// blocks of AST nodes with successor edges, aware of branches (if, for,
// range, switch, select), returns, break/continue (labeled included), and
// defers.  It is the substrate the forward-dataflow framework (dataflow.go)
// and the poolsafety/lockhold analyzers run on.
//
// Block contents are "shallow" nodes: simple statements appear whole, and
// compound statements are decomposed — a block never contains the body of
// a branch it guards.  Three marker nodes need shallow handling by
// analyzers (see InspectNode): a *ast.RangeStmt in a loop-header block
// stands for the per-iteration key/value assignment, a *ast.SelectStmt
// stands for the blocking select dispatch, and condition/tag expressions
// appear as bare ast.Expr nodes.  Function literals are never descended
// into: each literal has its own CFG.

// CFG is the control-flow graph of one function body.
type CFG struct {
	Fn     *Func
	Blocks []*Block
	Entry  *Block
	Exit   *Block // every return and the fall-off-end path lead here
	Defers []*ast.DeferStmt
	// Comm marks select comm statements: their channel operation happens
	// at the select dispatch (the *ast.SelectStmt marker), so analyzers
	// must not count it again as a standalone blocking point.
	Comm map[ast.Stmt]bool
}

// Block is one basic block: straight-line nodes and successor edges.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block
}

// InspectNode walks one block node the way analyzers should: simple
// statements and expressions are walked fully, marker nodes expose only
// their shallow parts (a range header contributes X/Key/Value, a select
// marker nothing), and function literals are never entered.
func InspectNode(n ast.Node, visit func(ast.Node) bool) {
	walk := func(m ast.Node) {
		if m == nil {
			return
		}
		ast.Inspect(m, func(x ast.Node) bool {
			if _, ok := x.(*ast.FuncLit); ok {
				visit(x) // show the literal itself, not its body
				return false
			}
			if x == nil {
				return false
			}
			return visit(x)
		})
	}
	switch n := n.(type) {
	case *ast.RangeStmt:
		walk(n.X)
		walk(n.Key)
		walk(n.Value)
	case *ast.SelectStmt:
		if !visit(n) {
			return
		}
	default:
		walk(n)
	}
}

// buildCFG constructs the CFG for f.  Bodyless functions get a trivial
// entry->exit graph.
func buildCFG(f *Func) *CFG {
	c := &CFG{Fn: f, Comm: make(map[ast.Stmt]bool)}
	b := &cfgBuilder{cfg: c, labels: make(map[string]*loopTargets)}
	c.Entry = b.newBlock()
	c.Exit = &Block{}
	b.cur = c.Entry
	if body := f.Body(); body != nil {
		b.stmtList(body.List)
	}
	b.jump(c.Exit) // fall off the end
	c.Exit.Index = len(c.Blocks)
	c.Blocks = append(c.Blocks, c.Exit)
	return c
}

type loopTargets struct {
	brk, cont *Block
}

type cfgBuilder struct {
	cfg    *CFG
	cur    *Block
	loops  []*loopTargets
	labels map[string]*loopTargets
	// pendingLabel names the label attached to the next loop/switch.
	pendingLabel string
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

// jump adds an edge cur -> to, unless cur already terminated.
func (b *cfgBuilder) jump(to *Block) {
	if b.cur != nil {
		b.cur.Succs = append(b.cur.Succs, to)
	}
}

// startBlock begins a new block and makes it current (no implicit edge).
func (b *cfgBuilder) startBlock(blk *Block) { b.cur = blk }

func (b *cfgBuilder) add(n ast.Node) {
	if b.cur != nil && n != nil {
		b.cur.Nodes = append(b.cur.Nodes, n)
	}
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)
	case *ast.LabeledStmt:
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		delete(b.labels, s.Label.Name)
		b.pendingLabel = ""
	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Cond)
		thenBlk, elseBlk, after := b.newBlock(), (*Block)(nil), b.newBlock()
		b.jump(thenBlk)
		if s.Else != nil {
			elseBlk = b.newBlock()
			b.jump(elseBlk)
		} else {
			b.jump(after)
		}
		b.startBlock(thenBlk)
		b.stmtList(s.Body.List)
		b.jump(after)
		if elseBlk != nil {
			b.startBlock(elseBlk)
			b.stmt(s.Else)
			b.jump(after)
		}
		b.startBlock(after)
	case *ast.ForStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		header := b.newBlock()
		body := b.newBlock()
		after := b.newBlock()
		post := header
		if s.Post != nil {
			post = b.newBlock()
			post.Nodes = append(post.Nodes, s.Post)
			post.Succs = append(post.Succs, header)
		}
		b.jump(header)
		b.startBlock(header)
		if s.Cond != nil {
			b.add(s.Cond)
			b.jump(body)
			b.jump(after)
		} else {
			b.jump(body) // for {}: after is reachable only via break
		}
		b.pushLoop(after, post)
		b.startBlock(body)
		b.stmtList(s.Body.List)
		b.jump(post)
		b.popLoop()
		b.startBlock(after)
	case *ast.RangeStmt:
		b.add(s.X)
		header := b.newBlock()
		body := b.newBlock()
		after := b.newBlock()
		b.jump(header)
		b.startBlock(header)
		b.add(s) // marker: per-iteration key/value assignment
		b.jump(body)
		b.jump(after)
		b.pushLoop(after, header)
		b.startBlock(body)
		b.stmtList(s.Body.List)
		b.jump(header)
		b.popLoop()
		b.startBlock(after)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		b.switchStmt(s)
	case *ast.SelectStmt:
		b.add(s) // marker: the blocking dispatch point
		after := b.newBlock()
		src := b.cur
		for _, cl := range s.Body.List {
			comm := cl.(*ast.CommClause)
			blk := b.newBlock()
			if src != nil {
				src.Succs = append(src.Succs, blk)
			}
			b.startBlock(blk)
			if comm.Comm != nil {
				b.cfg.Comm[comm.Comm] = true
				b.stmt(comm.Comm)
			}
			b.stmtList(comm.Body)
			b.jump(after)
		}
		b.startBlock(after)
	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.cfg.Exit)
		b.startBlock(nil) // unreachable until next label/join
	case *ast.BranchStmt:
		b.branch(s)
	case *ast.DeferStmt:
		b.add(s)
		b.cfg.Defers = append(b.cfg.Defers, s)
	default:
		// Simple statements: assign, expr, send, incdec, decl, go, empty.
		b.add(s)
	}
	// A nil cur after a terminator: create an unreachable continuation so
	// later statements still land in some block (they are dead code).
	if b.cur == nil {
		b.startBlock(b.newBlock())
	}
}

// switchStmt lowers switch and type-switch: every case body is a block
// branching from the tag, with fallthrough chaining to the next body.
func (b *cfgBuilder) switchStmt(s ast.Stmt) {
	var body *ast.BlockStmt
	hasDefault := false
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		body = s.Body
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Assign)
		body = s.Body
	}
	after := b.newBlock()
	src := b.cur
	label := b.pendingLabel
	b.pendingLabel = ""
	var caseBlocks []*Block
	for range body.List {
		caseBlocks = append(caseBlocks, b.newBlock())
	}
	for i, cl := range body.List {
		cc := cl.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		if src != nil {
			src.Succs = append(src.Succs, caseBlocks[i])
		}
		b.startBlock(caseBlocks[i])
		// break inside a switch exits the switch, not an enclosing loop.
		b.pushSwitch(after, label)
		for _, e := range cc.List {
			b.add(e)
		}
		b.stmtList(cc.Body)
		b.popLoop()
		// fallthrough is a BranchStmt handled in branch(); the normal exit
		// of a case goes to after.
		b.jump(after)
		_ = i
	}
	if !hasDefault && src != nil {
		src.Succs = append(src.Succs, after)
	}
	b.startBlock(after)
}

func (b *cfgBuilder) pushLoop(brk, cont *Block) {
	lt := &loopTargets{brk: brk, cont: cont}
	b.loops = append(b.loops, lt)
	if b.pendingLabel != "" {
		b.labels[b.pendingLabel] = lt
		b.pendingLabel = ""
	}
}

// pushSwitch registers a break-only target (switch/select bodies).
func (b *cfgBuilder) pushSwitch(brk *Block, label string) {
	lt := &loopTargets{brk: brk}
	b.loops = append(b.loops, lt)
	if label != "" {
		b.labels[label] = lt
	}
}

func (b *cfgBuilder) popLoop() { b.loops = b.loops[:len(b.loops)-1] }

func (b *cfgBuilder) branch(s *ast.BranchStmt) {
	b.add(s)
	var lt *loopTargets
	if s.Label != nil {
		lt = b.labels[s.Label.Name]
	} else {
		// Innermost target that supports the branch kind.
		for i := len(b.loops) - 1; i >= 0; i-- {
			cand := b.loops[i]
			if s.Tok.String() == "continue" && cand.cont == nil {
				continue // switch frame; continue skips it
			}
			lt = cand
			break
		}
	}
	switch s.Tok.String() {
	case "break":
		if lt != nil {
			b.jump(lt.brk)
			b.startBlock(nil)
		}
	case "continue":
		if lt != nil && lt.cont != nil {
			b.jump(lt.cont)
			b.startBlock(nil)
		}
	case "goto":
		// Not used in this module; approximate as an opaque exit.
		b.jump(b.cfg.Exit)
		b.startBlock(nil)
	case "fallthrough":
		// The next case body block is the lexically next block allocated in
		// switchStmt; chaining is approximated by falling through to after
		// via the normal jump, which over-approximates reachability.
	}
}

// String renders the CFG shape for tests: each block as
// "N[kinds] -> succ,succ".
func (c *CFG) String() string {
	var sb strings.Builder
	for _, blk := range c.Blocks {
		kinds := make([]string, 0, len(blk.Nodes))
		for _, n := range blk.Nodes {
			kinds = append(kinds, nodeKind(n))
		}
		succs := make([]int, 0, len(blk.Succs))
		for _, s := range blk.Succs {
			succs = append(succs, s.Index)
		}
		sort.Ints(succs)
		tag := ""
		if blk == c.Entry {
			tag = " entry"
		}
		if blk == c.Exit {
			tag = " exit"
		}
		fmt.Fprintf(&sb, "b%d%s [%s] -> %v\n", blk.Index, tag, strings.Join(kinds, " "), succs)
	}
	return sb.String()
}

func nodeKind(n ast.Node) string {
	switch n := n.(type) {
	case *ast.AssignStmt:
		return "assign"
	case *ast.ExprStmt:
		return "expr"
	case *ast.ReturnStmt:
		return "return"
	case *ast.DeferStmt:
		return "defer"
	case *ast.GoStmt:
		return "go"
	case *ast.SendStmt:
		return "send"
	case *ast.RangeStmt:
		return "range"
	case *ast.SelectStmt:
		return "select"
	case *ast.IncDecStmt:
		return "incdec"
	case *ast.DeclStmt:
		return "decl"
	case *ast.BranchStmt:
		return n.Tok.String()
	case ast.Expr:
		return "cond"
	default:
		return fmt.Sprintf("%T", n)
	}
}
