package lint

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// TestSARIFRoundTrip proves the emitted report is lossless for analyzer,
// position, and message — including characters that need JSON escaping.
func TestSARIFRoundTrip(t *testing.T) {
	in := []Diagnostic{
		{Analyzer: "ctxflow", File: "internal/serve/handlers.go", Line: 10, Col: 3, Message: "loop never consults ctx"},
		{Analyzer: "lockhold", File: "internal/serve/metrics.go", Line: 2, Col: 1, Message: `held across "quoted" write at 100%`},
	}
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, in); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"version": "2.1.0"`) {
		t.Fatalf("SARIF output does not carry the 2.1.0 version:\n%s", out)
	}
	got, err := ParseSARIF(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(in) {
		t.Fatalf("round trip returned %d diagnostics, want %d", len(got), len(in))
	}
	for i := range in {
		w, g := in[i], got[i]
		if g.Analyzer != w.Analyzer || g.File != w.File || g.Line != w.Line || g.Col != w.Col || g.Message != w.Message {
			t.Errorf("diagnostic %d: got %+v, want %+v", i, g, w)
		}
	}
}

// TestSARIFDeclaresAllRules: a clean run must still advertise every
// analyzer as a rule so code-scanning consumers know what was checked.
func TestSARIFDeclaresAllRules(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, nil); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, a := range All() {
		if !strings.Contains(s, `"id": "`+a.Name+`"`) {
			t.Errorf("clean SARIF run does not declare rule %s", a.Name)
		}
	}
}

// TestBaselineFilterMultiset pins the matching semantics: entries match by
// (analyzer, file, message) regardless of line, and each entry absorbs at
// most one finding.
func TestBaselineFilterMultiset(t *testing.T) {
	diags := []Diagnostic{
		{Analyzer: "ctxflow", File: "a.go", Line: 5, Message: "m"},
		{Analyzer: "ctxflow", File: "a.go", Line: 9, Message: "m"},
		{Analyzer: "ctxflow", File: "b.go", Line: 1, Message: "other"},
	}
	base := NewBaseline(diags[:1])
	got := base.Filter(diags)
	if len(got) != 2 || got[0].Line != 9 || got[1].File != "b.go" {
		t.Errorf("Filter kept %+v; want the second duplicate and the b.go finding", got)
	}
	// Line-independence: the same finding on a different line is still
	// absorbed, so edits above it cannot make it "new".
	moved := []Diagnostic{{Analyzer: "ctxflow", File: "a.go", Line: 42, Message: "m"}}
	if out := base.Filter(moved); len(out) != 0 {
		t.Errorf("Filter did not absorb a line-shifted duplicate: %+v", out)
	}
}

// TestBaselineRoundTripAndVersion checks serialization stability and that
// unknown versions or fields fail loudly.
func TestBaselineRoundTripAndVersion(t *testing.T) {
	b := NewBaseline([]Diagnostic{
		{Analyzer: "poolsafety", File: "z.go", Line: 7, Message: "leak"},
		{Analyzer: "atomicmix", File: "a.go", Line: 3, Message: "race"},
	})
	if b.Findings[0].File != "a.go" {
		t.Errorf("NewBaseline did not sort: %+v", b.Findings)
	}
	var buf bytes.Buffer
	if err := WriteBaseline(&buf, b); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBaseline(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, b) {
		t.Errorf("baseline round trip: got %+v, want %+v", got, b)
	}
	if _, err := ReadBaseline(strings.NewReader(`{"version": 2, "findings": []}`)); err == nil {
		t.Error("a version-2 baseline was accepted; want a loud failure")
	}
	if _, err := ReadBaseline(strings.NewReader(`{"version": 1, "findings": [], "bogus": true}`)); err == nil {
		t.Error("a baseline with unknown fields was accepted; want a loud failure")
	}
}
