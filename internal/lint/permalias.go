package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// PermAlias flags exported functions and methods that mutate or retain a
// permutation/label slice received from the caller.  Generator actions in
// this codebase operate on shared `perm.Perm` ([]int) and `perm.Label`
// ([]byte) slices; an exported API that writes into such a parameter, or
// stores it into longer-lived state, aliases the caller's backing array and
// silently corrupts later metric computations.
//
// Conventions the analyzer honors (and thereby enforces):
//
//   - In-place APIs must say so: functions whose name ends in "Into" or
//     "InPlace", and destination parameters named dst/out/buf/scratch, may
//     mutate freely (but still may not retain).
//   - Reassigning the parameter (p = p.Clone(); p = append(...)) counts as
//     taking a private copy; only uses before the first reassignment are
//     reported.
//   - Copying forms — string(p), p.Clone(), copy(fresh, p) — are never
//     flagged as retention.
var PermAlias = &Analyzer{
	Name: "permalias",
	Doc:  "exported API mutates or retains a permutation/label slice without copying",
	Run:  runPermAlias,
}

// inPlaceParamNames are destination-buffer parameter names that signal
// intentional in-place mutation.
var inPlaceParamNames = map[string]bool{"dst": true, "out": true, "buf": true, "scratch": true}

func runPermAlias(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !fn.Name.IsExported() {
				continue
			}
			params := permParams(pass, fn)
			if len(params) == 0 {
				continue
			}
			checkPermFunc(pass, fn, params)
		}
	}
}

// permParams collects the parameter (and receiver) objects of fn whose type
// is permutation-like: a named type called Perm or Label (any package), or
// a bare []byte / []int / []int32 whose name suggests permutation data.
func permParams(pass *Pass, fn *ast.FuncDecl) map[types.Object]string {
	out := make(map[types.Object]string)
	collect := func(fields *ast.FieldList) {
		if fields == nil {
			return
		}
		for _, field := range fields.List {
			for _, name := range field.Names {
				obj := pass.Info.Defs[name]
				if obj == nil {
					continue
				}
				if isPermType(obj.Type(), name.Name) {
					out[obj] = name.Name
				}
			}
		}
	}
	collect(fn.Recv)
	collect(fn.Type.Params)
	return out
}

func isPermType(t types.Type, paramName string) bool {
	if named, ok := t.(*types.Named); ok {
		name := named.Obj().Name()
		if name == "Perm" || name == "Label" {
			_, isSlice := named.Underlying().(*types.Slice)
			return isSlice
		}
		return false
	}
	slice, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	basic, ok := slice.Elem().(*types.Basic)
	if !ok {
		return false
	}
	switch basic.Kind() {
	case types.Byte, types.Int, types.Int32:
	default:
		return false
	}
	lower := strings.ToLower(paramName)
	return strings.Contains(lower, "perm") || strings.Contains(lower, "label") ||
		strings.Contains(lower, "word") || strings.Contains(lower, "seed")
}

type permViolation struct {
	pos  token.Pos
	obj  types.Object
	name string
	msg  string
}

func checkPermFunc(pass *Pass, fn *ast.FuncDecl, params map[types.Object]string) {
	inPlaceFunc := strings.HasSuffix(fn.Name.Name, "Into") || strings.HasSuffix(fn.Name.Name, "InPlace")
	// firstReassign[obj] is the position of the first statement that rebinds
	// the parameter itself (p = ...): from there on the identifier refers to
	// a private copy, so later writes and stores are fine.
	firstReassign := make(map[types.Object]token.Pos)
	var violations []permViolation

	paramObj := func(e ast.Expr) (types.Object, string, bool) {
		id, ok := e.(*ast.Ident)
		if !ok {
			return nil, "", false
		}
		obj := pass.Info.Uses[id]
		if obj == nil {
			obj = pass.Info.Defs[id]
		}
		name, tracked := params[obj]
		return obj, name, tracked
	}
	mayMutate := func(name string) bool { return inPlaceFunc || inPlaceParamNames[name] }

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				// p = ... rebinding: record; not a violation in itself.
				if obj, _, ok := paramObj(lhs); ok {
					if _, seen := firstReassign[obj]; !seen {
						firstReassign[obj] = n.Pos()
					}
					continue
				}
				// p[i] = ... mutation through the parameter.
				if idx, ok := lhs.(*ast.IndexExpr); ok {
					if obj, name, ok := paramObj(idx.X); ok && !mayMutate(name) {
						violations = append(violations, permViolation{
							pos: idx.Pos(), obj: obj, name: name,
							msg: "writes into caller-owned slice %q; copy it first or mark the API in-place (*Into/*InPlace name, or dst/out/buf/scratch param)",
						})
					}
				}
				// field = p / pkgvar = p retention (only meaningful when each
				// LHS has its own RHS expression).
				if len(n.Lhs) == len(n.Rhs) && isLongLived(pass, lhs) {
					if obj, name, ok := retainedParam(n.Rhs[i], paramObj); ok {
						violations = append(violations, permViolation{
							pos: n.Pos(), obj: obj, name: name,
							msg: "stores caller-owned slice %q into longer-lived state; clone it first (p.Clone() or append-copy)",
						})
					}
				}
			}
		case *ast.CallExpr:
			// copy(p, ...) mutates p via the builtin.
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "copy" && len(n.Args) == 2 {
				if obj := pass.Info.Uses[id]; obj == nil || obj.Pkg() == nil { // builtin, not shadowed
					if pobj, name, ok := paramObj(n.Args[0]); ok && !mayMutate(name) {
						violations = append(violations, permViolation{
							pos: n.Pos(), obj: pobj, name: name,
							msg: "copies into caller-owned slice %q; mark the API in-place or use a fresh buffer",
						})
					}
				}
			}
		}
		return true
	})

	seen := make(map[string]bool) // dedupe swap statements: one report per obj+line
	for _, v := range violations {
		if pos, ok := firstReassign[v.obj]; ok && pos <= v.pos {
			continue // parameter was rebound to a copy before this use
		}
		p := pass.Fset.Position(v.pos)
		key := fmt.Sprintf("%s:%s:%d", v.name, p.Filename, p.Line)
		if seen[key] {
			continue
		}
		seen[key] = true
		pass.Reportf(v.pos, "exported %s "+v.msg, fn.Name.Name, v.name)
	}
}

// retainedParam reports whether rhs hands the bare parameter slice onward:
// the identifier itself, an element of a composite literal, or an argument
// to append.  string(p) conversions and method calls like p.Clone() copy,
// so they do not retain.
func retainedParam(rhs ast.Expr, paramObj func(ast.Expr) (types.Object, string, bool)) (types.Object, string, bool) {
	if obj, name, ok := paramObj(rhs); ok {
		return obj, name, true
	}
	switch e := rhs.(type) {
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			if obj, name, ok := paramObj(elt); ok {
				return obj, name, true
			}
		}
	case *ast.CallExpr:
		if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "append" {
			for _, a := range e.Args {
				if obj, name, ok := paramObj(a); ok {
					// append(p, ...) aliases p's array; append(x, p...) copies
					// p's elements into x, which is retention of values but
					// not of the caller's backing array — still flag the base
					// case only.
					if a == e.Args[0] && e.Ellipsis == token.NoPos {
						return obj, name, true
					}
					if a != e.Args[0] && e.Ellipsis == token.NoPos {
						return obj, name, true // append(x, p) — p stored whole as an element
					}
				}
			}
		}
	}
	return nil, "", false
}

// isLongLived reports whether lhs outlives the call: a field selector, an
// element of such, or a package-level variable.
func isLongLived(pass *Pass, lhs ast.Expr) bool {
	switch e := lhs.(type) {
	case *ast.SelectorExpr:
		return true
	case *ast.IndexExpr:
		return isLongLived(pass, e.X)
	case *ast.Ident:
		obj := pass.Info.Uses[e]
		if obj == nil {
			obj = pass.Info.Defs[e]
		}
		if v, ok := obj.(*types.Var); ok {
			return v.Parent() == pass.Pkg.Scope()
		}
	}
	return false
}
