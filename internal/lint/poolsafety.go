package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// PoolSafety checks GetScratch/PutScratch pairing with a path-sensitive
// dataflow over each function's CFG.  The scratch pool is the serving hot
// path's only defense against per-request O(N) allocation, and every
// misuse corrupts it differently:
//
//   - a path that returns without PutScratch leaks the buffers (the pool
//     refills with fresh O(N) allocations);
//   - a double PutScratch hands the same *Scratch to two goroutines,
//     which then race on Dist/Queue;
//   - using a scratch after PutScratch races with whoever checked it out
//     next;
//   - growing an alias of a pooled buffer (q := s.Queue; q = append(...))
//     without writing it back strands the growth — the pool keeps the
//     small buffer and the next checkout reallocates.
//
// The flow facts track, per scratch variable, whether it may be held,
// may already be released, and whether a deferred PutScratch covers it.
// Get/Put are matched by name (GetScratch/PutScratch, buffer type named
// Scratch) so fixtures and future pool wrappers participate.  Deferred
// puts are approximated as covering the whole function: a defer inside a
// branch still silences the leak check (noted here so nobody "fixes" a
// surprising non-finding).
var PoolSafety = &Analyzer{
	Name:   "poolsafety",
	Doc:    "GetScratch/PutScratch pairing: leaks, double puts, use-after-put, stranded growth",
	Module: true,
	Run:    runPoolSafety,
}

// pstate is a bitmask fact for one scratch variable.
type pstate uint8

const (
	psHeld     pstate = 1 << iota // checked out, not yet returned on some path
	psReleased                    // returned on some path
	psDeferred                    // a defer PutScratch covers it
)

type poolFact map[types.Object]pstate

func (f poolFact) clone() poolFact {
	out := make(poolFact, len(f))
	for k, v := range f {
		out[k] = v
	}
	return out
}

func runPoolSafety(pass *Pass) {
	cg := pass.Prog.CallGraph()
	for _, fn := range cg.Funcs {
		if fn.Body() == nil {
			continue
		}
		ps := &poolScan{pass: pass, pkg: fn.Pkg, getPos: make(map[types.Object]token.Pos), seen: make(map[string]bool)}
		if !ps.usesPool(fn) {
			continue
		}
		cfg := pass.Prog.CFG(fn)
		spec := FlowSpec[poolFact]{
			Entry: poolFact{},
			Transfer: func(_ *Block, n ast.Node, in poolFact) poolFact {
				return ps.transfer(n, in, false)
			},
			Join:  joinPoolFacts,
			Equal: equalPoolFacts,
		}
		res := Forward(cfg, spec)
		// Reporting pass: replay each block once from its fixpoint entry
		// fact so findings are not duplicated across worklist iterations.
		for _, blk := range cfg.Blocks {
			fact, ok := res.In[blk]
			if !ok {
				continue // unreachable
			}
			for _, n := range blk.Nodes {
				fact = ps.transfer(n, fact, true)
			}
			if blk == cfg.Exit {
				for obj, st := range fact {
					if st&psHeld != 0 && st&psDeferred == 0 {
						ps.report(ps.getPos[obj],
							"scratch %s from GetScratch may reach a return without PutScratch; add a defer or put it on every path", obj.Name())
					}
				}
			}
		}
		ps.growEscape(fn)
	}
}

type poolScan struct {
	pass   *Pass
	pkg    *Package
	getPos map[types.Object]token.Pos
	seen   map[string]bool
}

func (ps *poolScan) report(pos token.Pos, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	key := fmt.Sprintf("%v:%s", ps.pass.Fset.Position(pos), msg)
	if !ps.seen[key] {
		ps.seen[key] = true
		ps.pass.Reportf(pos, "%s", msg)
	}
}

// usesPool pre-scans for a GetScratch or PutScratch call so the CFG and
// fixpoint only run over functions that touch the pool.
func (ps *poolScan) usesPool(fn *Func) bool {
	found := false
	inspectShallow(fn.Body(), func(n ast.Node) {
		if call, ok := n.(*ast.CallExpr); ok {
			switch calleeShortName(call) {
			case "GetScratch", "PutScratch":
				found = true
			}
		}
	})
	return found
}

func (ps *poolScan) transfer(n ast.Node, in poolFact, report bool) poolFact {
	// Facts are tiny (one or two scratches per function), so clone up
	// front rather than copy-on-write; Transfer must never mutate `in`.
	out := in.clone()

	// Idents that are themselves the argument of a Get/Put call in this
	// node: excluded from the use-after-put scan.
	opIdents := make(map[*ast.Ident]bool)

	// Deferred put registers coverage instead of releasing now.
	if d, ok := n.(*ast.DeferStmt); ok {
		if calleeShortName(d.Call) == "PutScratch" && len(d.Call.Args) == 1 {
			if obj := ps.identObj(d.Call.Args[0]); obj != nil {
				if id, ok := ast.Unparen(d.Call.Args[0]).(*ast.Ident); ok {
					opIdents[id] = true
				}
				st := out[obj]
				if report && st&psDeferred != 0 {
					ps.report(d.Pos(), "second deferred PutScratch for %s: it will be returned to the pool twice", obj.Name())
				}
				if report && st&psReleased != 0 && st&psHeld == 0 {
					ps.report(d.Pos(), "deferred PutScratch for %s after it was already put: double return to the pool", obj.Name())
				}
				out[obj] = st | psDeferred
			}
		}
		return out
	}

	InspectNode(n, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.AssignStmt:
			if len(node.Lhs) != len(node.Rhs) {
				return true
			}
			for i := range node.Rhs {
				call, ok := ast.Unparen(node.Rhs[i]).(*ast.CallExpr)
				if !ok || calleeShortName(call) != "GetScratch" || !returnsScratch(ps.pkg, call) {
					continue
				}
				obj := ps.identObj(node.Lhs[i])
				if obj == nil {
					continue
				}
				st := out[obj]
				if report && st&psHeld != 0 && st&psDeferred == 0 {
					ps.report(node.Pos(), "scratch %s reassigned by GetScratch while still held; the previous scratch leaks", obj.Name())
				}
				out[obj] = psHeld
				if _, ok := ps.getPos[obj]; !ok {
					ps.getPos[obj] = call.Pos()
				}
			}
		case *ast.CallExpr:
			if calleeShortName(node) != "PutScratch" || len(node.Args) != 1 {
				return true
			}
			obj := ps.identObj(node.Args[0])
			if obj == nil {
				return true
			}
			if id, ok := ast.Unparen(node.Args[0]).(*ast.Ident); ok {
				opIdents[id] = true
			}
			st, tracked := out[obj]
			if !tracked {
				return true // parameter or field scratch: ownership lies with the caller
			}
			if report {
				if st&psReleased != 0 && st&psHeld == 0 {
					ps.report(node.Pos(), "double PutScratch: %s was already returned to the pool on every path reaching here", obj.Name())
				}
				if st&psDeferred != 0 {
					ps.report(node.Pos(), "explicit PutScratch for %s with a deferred PutScratch also registered: double return at function exit", obj.Name())
				}
			}
			out[obj] = (st &^ psHeld) | psReleased
		}
		return true
	})

	// Use-after-put: any other read of a scratch that has definitely been
	// returned (released on every path, held on none).
	if report {
		InspectNode(n, func(node ast.Node) bool {
			id, ok := node.(*ast.Ident)
			if !ok || opIdents[id] {
				return true
			}
			obj := ps.pkg.Info.Uses[id]
			if obj == nil {
				return true
			}
			if st, tracked := out[obj]; tracked && st&psReleased != 0 && st&psHeld == 0 {
				ps.report(id.Pos(), "%s used after PutScratch: the pool may already have handed it to another goroutine", obj.Name())
			}
			return true
		})
	}
	return out
}

func (ps *poolScan) identObj(e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := ps.pkg.Info.Defs[id]; obj != nil {
		return obj
	}
	return ps.pkg.Info.Uses[id]
}

// returnsScratch confirms the call yields a pointer to a type named
// Scratch, so an unrelated GetScratch in some other API doesn't enroll.
func returnsScratch(pkg *Package, call *ast.CallExpr) bool {
	tv, ok := pkg.Info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	return isScratchType(tv.Type)
}

func isScratchType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj().Name() == "Scratch"
}

func joinPoolFacts(a, b poolFact) poolFact {
	out := a.clone()
	for k, v := range b {
		out[k] |= v
	}
	return out
}

func equalPoolFacts(a, b poolFact) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// growEscape flags append-growth of a pooled buffer alias that is never
// written back:
//
//	q := s.Queue          // alias of the pooled buffer
//	q = append(q, ...)    // may reallocate past cap
//	                      // missing: s.Queue = q
//
// If append reallocates, the pool keeps the original small buffer and the
// growth is thrown away on PutScratch.  Callers relying on a capacity
// invariant (GetScratch(n) guarantees cap >= n and they push at most n)
// suppress with that invariant cited.
func (ps *poolScan) growEscape(fn *Func) {
	type alias struct {
		base  types.Object
		field string
	}
	aliases := make(map[types.Object]alias)
	grown := make(map[types.Object]token.Pos)
	written := make(map[types.Object]bool)

	inspectShallow(fn.Body(), func(n ast.Node) {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return
		}
		for i := range as.Lhs {
			lhs, rhs := ast.Unparen(as.Lhs[i]), ast.Unparen(as.Rhs[i])
			// q := s.Queue
			if sel, ok := rhs.(*ast.SelectorExpr); ok {
				if base := ps.identObj(sel.X); base != nil && isScratchType(baseType(ps.pkg, sel.X)) {
					if obj := ps.identObj(lhs); obj != nil {
						aliases[obj] = alias{base: base, field: sel.Sel.Name}
					}
				}
			}
			// q = append(q, ...)
			if call, ok := rhs.(*ast.CallExpr); ok && calleeShortName(call) == "append" && len(call.Args) > 0 {
				if obj := ps.identObj(lhs); obj != nil && obj == ps.identObj(call.Args[0]) {
					if _, isAlias := aliases[obj]; isAlias {
						if _, ok := grown[obj]; !ok {
							grown[obj] = as.Pos()
						}
					}
				}
			}
			// s.Queue = q
			if sel, ok := lhs.(*ast.SelectorExpr); ok {
				if base := ps.identObj(sel.X); base != nil {
					if obj := ps.identObj(rhs); obj != nil {
						if al, isAlias := aliases[obj]; isAlias && al.base == base && al.field == sel.Sel.Name {
							written[obj] = true
						}
					}
				}
			}
		}
	})
	for obj, pos := range grown {
		if written[obj] {
			continue
		}
		al := aliases[obj]
		ps.report(pos,
			"append may grow %s past the pooled buffer's capacity; write it back (%s.%s = %s) before PutScratch or cite the capacity invariant that rules out growth",
			obj.Name(), al.base.Name(), al.field, obj.Name())
	}
}

func baseType(pkg *Package, e ast.Expr) types.Type {
	tv, ok := pkg.Info.Types[ast.Unparen(e)]
	if !ok {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			if obj := pkg.Info.Uses[id]; obj != nil {
				return obj.Type()
			}
		}
		return nil
	}
	return tv.Type
}
