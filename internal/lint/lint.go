// Package lint is a small, stdlib-only static-analysis engine for this
// repository.  It loads Go packages with go/parser + go/types (using the
// "source" importer, so it needs no compiled export data and works with the
// zero-dependency go.mod) and runs a suite of project-specific analyzers
// over them.
//
// The analyzers encode bug classes that have bitten — or would silently
// corrupt — the IPG reproduction:
//
//   - permalias:     aliasing of permutation/label slices across exported
//     API boundaries (the generator-action in-place mutation bug class).
//   - indextrunc:    int -> int32/int16/uint32 truncation of vertex indices
//     and counts without an overflow guard.
//   - goroutineleak: `go` statements in functions with no visible join
//     (WaitGroup.Wait, channel receive, or select), violating the
//     worker-pool idiom used by graph/netsim/ascend.
//   - errdrop:       discarded error results from simulation entry points
//     (Step / Run* / Route* methods).
//   - adjbuild:      [][]int32 adjacency lists spelled outside the topology
//     core (internal/graph, internal/topo), which must stay the single
//     CSR-backed representation of the graph.
//   - scratchalloc:  per-request []int32/[]uint64 traversal scratch
//     allocated inside serve handlers instead of drawing on the shared
//     topo.GetScratch / PutScratch buffer pool.
//
// Findings can be suppressed with an inline directive:
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// placed on the offending line or on its own line immediately above, or
// for a whole file with
//
//	//lint:file-ignore <analyzer>[,<analyzer>...] <reason>
//
// near the top of the file.  A reason is mandatory; malformed directives
// are themselves reported (analyzer name "directive").
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one static check.  Run inspects a single type-checked package
// via the Pass and reports findings with Pass.Reportf.
type Analyzer struct {
	Name string // short lowercase identifier used in output and directives
	Doc  string // one-line description
	Run  func(pass *Pass)
}

// Pass carries one (analyzer, package) unit of work.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, positioned in the original source.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Col      int            `json:"col"`
	Message  string         `json:"message"`
}

// String renders the conventional file:line:col: message form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// All returns the full analyzer suite in a stable order.
func All() []*Analyzer {
	return []*Analyzer{PermAlias, IndexTrunc, GoroutineLeak, ErrDrop, AdjBuild, ScratchAlloc}
}

// ByName resolves a comma-free analyzer name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Run executes the analyzers over the packages, applies ignore directives,
// and returns the surviving diagnostics sorted by position.  Malformed
// directives are reported under the pseudo-analyzer "directive".
func Run(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				diags:    &diags,
			}
			a.Run(pass)
		}
	}
	known := make(map[string]bool)
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var kept []Diagnostic
	for _, pkg := range pkgs {
		dirs, bad := collectDirectives(fset, pkg, known)
		pkg.directives = dirs
		kept = append(kept, bad...)
	}
	for _, d := range diags {
		suppressed := false
		for _, pkg := range pkgs {
			if pkg.directives.suppresses(d) {
				suppressed = true
				break
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	for i := range kept {
		kept[i].File = kept[i].Pos.Filename
		kept[i].Line = kept[i].Pos.Line
		kept[i].Col = kept[i].Pos.Column
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return kept
}
