// Package lint is a small, stdlib-only static-analysis engine for this
// repository.  It loads Go packages with go/parser + go/types (using the
// "source" importer, so it needs no compiled export data and works with the
// zero-dependency go.mod) and runs a suite of project-specific analyzers
// over them.
//
// The analyzers encode bug classes that have bitten — or would silently
// corrupt — the IPG reproduction:
//
//   - permalias:     aliasing of permutation/label slices across exported
//     API boundaries (the generator-action in-place mutation bug class).
//   - indextrunc:    int -> int32/int16/uint32 truncation of vertex indices
//     and counts without an overflow guard.
//   - goroutineleak: `go` statements in functions with no visible join
//     (WaitGroup.Wait, channel receive, or select), violating the
//     worker-pool idiom used by graph/netsim/ascend.
//   - errdrop:       discarded error results from simulation entry points
//     (Step / Run* / Route* methods).
//   - adjbuild:      [][]int32 adjacency lists spelled outside the topology
//     core (internal/graph, internal/topo), which must stay the single
//     CSR-backed representation of the graph.
//   - scratchalloc:  per-request []int32/[]uint64 traversal scratch
//     allocated inside serve handlers instead of drawing on the shared
//     topo.GetScratch / PutScratch buffer pool.
//
// Findings can be suppressed with an inline directive:
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// placed on the offending line or on its own line immediately above, or
// for a whole file with
//
//	//lint:file-ignore <analyzer>[,<analyzer>...] <reason>
//
// near the top of the file.  A reason is mandatory; malformed directives
// are themselves reported (analyzer name "directive").
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one static check.  A package analyzer (Module false) runs
// once per package and inspects Pass.Files; a module analyzer (Module
// true) runs once over the whole program and walks Pass.Prog — the
// call graph, per-function CFGs, and every loaded package including
// in-package test files.
type Analyzer struct {
	Name   string // short lowercase identifier used in output and directives
	Doc    string // one-line description
	Module bool   // run once over the whole program instead of per package
	Run    func(pass *Pass)
}

// Pass carries one unit of work: (analyzer, package) for package
// analyzers, (analyzer, program) for module analyzers (Pkg/Info/Files are
// nil in that case).
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	Prog     *Program

	diags *[]Diagnostic
}

// Program is the whole-module view handed to module analyzers.  The call
// graph and CFGs are built lazily, once, on first use.
type Program struct {
	Fset     *token.FileSet
	Packages []*Package

	cg   *CallGraph
	cfgs map[*Func]*CFG
}

// CallGraph returns the module call graph, building it on first call.
func (p *Program) CallGraph() *CallGraph {
	if p.cg == nil {
		p.cg = buildCallGraph(p.Fset, p.Packages)
	}
	return p.cg
}

// CFG returns f's control-flow graph, building and caching it on demand.
func (p *Program) CFG(f *Func) *CFG {
	if p.cfgs == nil {
		p.cfgs = make(map[*Func]*CFG)
	}
	c := p.cfgs[f]
	if c == nil {
		c = buildCFG(f)
		p.cfgs[f] = c
	}
	return c
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// InTestFile reports whether pos lies in a _test.go file — analyzers whose
// bug class only matters on production API boundaries (indextrunc) use it
// to skip the test universe.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// Diagnostic is one finding, positioned in the original source.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Col      int            `json:"col"`
	Message  string         `json:"message"`
}

// String renders the conventional file:line:col: message form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// All returns the full analyzer suite in a stable order: the per-package
// checks from PR 1/2/4 followed by the interprocedural module checks.
func All() []*Analyzer {
	return []*Analyzer{
		PermAlias, IndexTrunc, GoroutineLeak, ErrDrop, AdjBuild, ScratchAlloc,
		CtxFlow, PoolSafety, LockHold, AtomicMix,
	}
}

// ByName resolves a comma-free analyzer name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Suppression describes one lint:ignore directive after a run: where it
// is, what it covers, why, and how many findings it absorbed.
type Suppression struct {
	File      string   `json:"file"`
	Line      int      `json:"line"`
	Analyzers []string `json:"analyzers"`
	Reason    string   `json:"reason"`
	FileWide  bool     `json:"file_wide"`
	Count     int      `json:"suppressed"` // findings this directive absorbed
}

// Result bundles the surviving diagnostics with the suppression report
// (the -why listing).
type Result struct {
	Diags        []Diagnostic
	Suppressions []Suppression
}

// Run executes the analyzers over the packages, applies ignore directives,
// and returns the surviving diagnostics sorted by position.  Malformed
// directives are reported under the pseudo-analyzer "directive".
func Run(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	return RunResult(fset, pkgs, analyzers).Diags
}

// RunResult is Run plus the suppression report, assuming pkgs is the whole
// module.  Directives that suppress nothing are themselves reported as
// "directive" findings (a stale suppression hides nothing but rots into a
// license to ignore the next real finding at that line).
func RunResult(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) Result {
	return runResult(fset, pkgs, analyzers, false)
}

// RunResultPartial is RunResult for a subset of the module.  Unused
// directives are then only reported for package-local analyzers: a module
// analyzer's findings depend on entry points and call paths that may live
// outside the loaded set, so a partial run proves nothing about whether
// its directives are stale.
func RunResultPartial(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) Result {
	return runResult(fset, pkgs, analyzers, true)
}

func runResult(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer, partial bool) Result {
	var diags []Diagnostic
	prog := &Program{Fset: fset, Packages: pkgs}
	for _, a := range analyzers {
		if a.Module {
			pass := &Pass{Analyzer: a, Fset: fset, Prog: prog, diags: &diags}
			a.Run(pass)
			continue
		}
		for _, pkg := range pkgs {
			pass := &Pass{
				Analyzer: a,
				Fset:     fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Prog:     prog,
				diags:    &diags,
			}
			a.Run(pass)
		}
	}
	known := make(map[string]bool)
	enabled := make(map[string]bool)
	for _, a := range All() {
		known[a.Name] = true
	}
	for _, a := range analyzers {
		known[a.Name] = true
		// A module analyzer's verdict on a partial package set is
		// incomplete, so its directives are exempt from staleness
		// reporting there.
		enabled[a.Name] = !partial || !a.Module
	}
	var kept []Diagnostic
	for _, pkg := range pkgs {
		dirs, bad := collectDirectives(fset, pkg, known)
		pkg.directives = dirs
		kept = append(kept, bad...)
	}
	for _, d := range diags {
		suppressed := false
		for _, pkg := range pkgs {
			if pkg.directives.suppresses(d) {
				suppressed = true
				break
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	// Report unused directives: a directive that covers at least one
	// enabled analyzer yet suppressed nothing is stale.  Directives naming
	// only disabled analyzers are left alone (a partial run proves
	// nothing about them).
	var sups []Suppression
	for _, pkg := range pkgs {
		if pkg.directives == nil {
			continue
		}
		for i := range pkg.directives.list {
			dir := &pkg.directives.list[i]
			names := make([]string, 0, len(dir.analyzers))
			anyEnabled := false
			for n := range dir.analyzers {
				names = append(names, n)
				if enabled[n] {
					anyEnabled = true
				}
			}
			sort.Strings(names)
			sups = append(sups, Suppression{
				File:      dir.file,
				Line:      dir.line,
				Analyzers: names,
				Reason:    dir.reason,
				FileWide:  dir.fileWide,
				Count:     dir.used,
			})
			if dir.used == 0 && anyEnabled {
				kept = append(kept, Diagnostic{
					Analyzer: "directive",
					Pos:      token.Position{Filename: dir.file, Line: dir.line, Column: 1},
					Message:  fmt.Sprintf("unused lint:ignore directive for %s: no finding suppressed; delete it", strings.Join(names, ",")),
				})
			}
		}
	}
	sort.Slice(sups, func(i, j int) bool {
		if sups[i].File != sups[j].File {
			return sups[i].File < sups[j].File
		}
		return sups[i].Line < sups[j].Line
	})
	for i := range kept {
		kept[i].File = kept[i].Pos.Filename
		kept[i].Line = kept[i].Pos.Line
		kept[i].Col = kept[i].Pos.Column
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return Result{Diags: kept, Suppressions: sups}
}
