package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrDrop flags discarded error results from the simulation entry points:
// functions and methods named Step, Step*, Run*, or Route* that return an
// error.  netsim.Sim.Step reports livelock through its error; ascend's
// Run reports malformed passes; superipg's RouteWord reports unroutable
// label pairs.  Dropping any of these turns a wrong-answer condition into
// a silently wrong table in the paper reproduction.
//
// Flagged forms: a bare call statement, `go`/`defer` of such a call, and
// assignments that bind the error result to the blank identifier.
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc:  "discarded error result from a Step/Run*/Route* simulation call",
	Run:  runErrDrop,
}

func runErrDrop(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					reportDroppedErr(pass, call, "result discarded")
				}
			case *ast.GoStmt:
				reportDroppedErr(pass, n.Call, "error lost in go statement")
			case *ast.DeferStmt:
				reportDroppedErr(pass, n.Call, "error lost in defer statement")
			case *ast.AssignStmt:
				if len(n.Rhs) != 1 {
					return true
				}
				call, ok := n.Rhs[0].(*ast.CallExpr)
				if !ok {
					return true
				}
				name, errIdx, ok := simCallWithError(pass, call)
				if !ok || errIdx >= len(n.Lhs) {
					return true
				}
				if id, ok := n.Lhs[errIdx].(*ast.Ident); ok && id.Name == "_" {
					pass.Reportf(n.Pos(), "error result of %s assigned to _; handle it (livelock/malformed-pass conditions arrive this way)", name)
				}
			}
			return true
		})
	}
}

func reportDroppedErr(pass *Pass, call *ast.CallExpr, how string) {
	if name, _, ok := simCallWithError(pass, call); ok {
		pass.Reportf(call.Pos(), "error result of %s %s; handle it (livelock/malformed-pass conditions arrive this way)", name, how)
	}
}

// simCallWithError reports whether call invokes a Step/Run*/Route* function
// whose results include an error, returning the callee name and the index
// of the error result.
func simCallWithError(pass *Pass, call *ast.CallExpr) (string, int, bool) {
	var name string
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	default:
		return "", 0, false
	}
	if name != "Step" && !strings.HasPrefix(name, "Step") &&
		!strings.HasPrefix(name, "Run") && !strings.HasPrefix(name, "Route") {
		return "", 0, false
	}
	tv, ok := pass.Info.Types[call.Fun]
	if !ok {
		return "", 0, false
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok {
		return "", 0, false
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if named, ok := res.At(i).Type().(*types.Named); ok &&
			named.Obj().Name() == "error" && named.Obj().Pkg() == nil {
			return name, i, true
		}
	}
	return "", 0, false
}
