package lint

import (
	"go/ast"
	"go/token"
	"os"
	"strings"
)

// ignorePrefix and fileIgnorePrefix are the inline-suppression directives.
// Both require an analyzer list and a non-empty reason:
//
//	//lint:ignore indextrunc ids are bounded by MaxNodes above
//	//lint:file-ignore permalias this file implements the in-place kernels
//
// //lint:ignore binds to its own line or the line below; //lint:file-ignore
// covers the whole file and must sit in the file header — anywhere from the
// package clause down to the first non-import declaration, so a position
// below the import block is fine.  A file-ignore buried in the body is
// reported instead of silently honored, as is any directive that suppresses
// nothing (see RunResult).
const (
	ignorePrefix     = "//lint:ignore "
	fileIgnorePrefix = "//lint:file-ignore "
)

type directive struct {
	file      string
	line      int
	ownLine   bool // nothing but whitespace precedes the comment on its line
	fileWide  bool
	analyzers map[string]bool
	reason    string
	used      int // findings this directive suppressed in the current run
}

type fileDirectives struct {
	list []directive
}

func (fd *fileDirectives) suppresses(d Diagnostic) bool {
	if fd == nil {
		return false
	}
	for i := range fd.list {
		dir := &fd.list[i]
		if dir.file != d.Pos.Filename || !dir.analyzers[d.Analyzer] {
			continue
		}
		if dir.fileWide || d.Pos.Line == dir.line || (dir.ownLine && d.Pos.Line == dir.line+1) {
			dir.used++
			return true
		}
	}
	return false
}

// collectDirectives scans a package's comments for lint:ignore directives.
// Malformed directives (missing reason, unknown analyzer) and file-ignore
// directives outside the file header are returned as diagnostics under the
// pseudo-analyzer "directive" so they cannot silently fail to suppress.
func collectDirectives(fset *token.FileSet, pkg *Package, known map[string]bool) (*fileDirectives, []Diagnostic) {
	fd := &fileDirectives{}
	var bad []Diagnostic
	srcByFile := make(map[string][]byte)
	report := func(pos token.Position, msg string) {
		bad = append(bad, Diagnostic{Analyzer: "directive", Pos: pos, Message: msg})
	}
	for _, f := range pkg.Files {
		headerEnd := headerEndLine(fset, f)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				fileWide := false
				var rest string
				switch {
				case strings.HasPrefix(text, ignorePrefix):
					rest = text[len(ignorePrefix):]
				case strings.HasPrefix(text, fileIgnorePrefix):
					rest = text[len(fileIgnorePrefix):]
					fileWide = true
				case text == strings.TrimSuffix(ignorePrefix, " "), text == strings.TrimSuffix(fileIgnorePrefix, " "):
					report(fset.Position(c.Pos()), "directive needs an analyzer list and a reason")
					continue
				default:
					continue
				}
				pos := fset.Position(c.Pos())
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					report(pos, "directive needs an analyzer list and a reason")
					continue
				}
				if fileWide && pos.Line >= headerEnd {
					report(pos, "file-ignore directive must sit in the file header (package clause through the import block); move it up or use a line-level lint:ignore")
					continue
				}
				names := strings.Split(fields[0], ",")
				set := make(map[string]bool, len(names))
				ok := true
				for _, n := range names {
					if !known[n] {
						report(pos, "unknown analyzer "+n+" in directive")
						ok = false
						break
					}
					set[n] = true
				}
				if !ok {
					continue
				}
				fd.list = append(fd.list, directive{
					file:      pos.Filename,
					line:      pos.Line,
					ownLine:   ownLine(srcByFile, pos),
					fileWide:  fileWide,
					analyzers: set,
					reason:    strings.Join(fields[1:], " "),
				})
			}
		}
	}
	return fd, bad
}

// headerEndLine returns the line of the first non-import declaration — the
// boundary below which a file-ignore no longer counts as "near the top".
// Doc comments belong to their declaration, so a file-ignore above the
// first function is still (deliberately) rejected: it would read as
// documentation of that one function while silently covering the file.
func headerEndLine(fset *token.FileSet, f *ast.File) int {
	for _, decl := range f.Decls {
		if gd, ok := decl.(*ast.GenDecl); ok && gd.Tok == token.IMPORT {
			continue
		}
		pos := decl.Pos()
		if d, ok := decl.(*ast.FuncDecl); ok && d.Doc != nil {
			pos = d.Doc.Pos()
		} else if d, ok := decl.(*ast.GenDecl); ok && d.Doc != nil {
			pos = d.Doc.Pos()
		}
		return fset.Position(pos).Line
	}
	return int(^uint(0) >> 1) // no declarations: the whole file is header
}

// ownLine reports whether only whitespace precedes the comment on its line,
// reading (and caching) the source file to check.
func ownLine(cache map[string][]byte, pos token.Position) bool {
	src, ok := cache[pos.Filename]
	if !ok {
		src, _ = os.ReadFile(pos.Filename)
		cache[pos.Filename] = src
	}
	start := pos.Offset - (pos.Column - 1)
	if start < 0 || pos.Offset > len(src) {
		return false
	}
	return strings.TrimSpace(string(src[start:pos.Offset])) == ""
}
