package lint

import (
	"encoding/json"
	"io"
	"sort"
)

// SARIF 2.1.0 serialization of a lint run, the interchange format GitHub
// code scanning ingests.  Only the subset the suite needs is modeled, but
// the field names follow the specification exactly so the output
// round-trips through any conforming consumer.  Paths are emitted as
// given (the CLI passes repo-relative slash paths) under the %SRCROOT%
// uriBaseId, which uploaders resolve to the checkout root.

const (
	sarifSchema  = "https://json.schemastore.org/sarif-2.1.0.json"
	sarifVersion = "2.1.0"
)

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId,omitempty"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF renders diagnostics as one SARIF 2.1.0 run.  Every analyzer
// in the suite is declared as a rule (plus the "directive" pseudo-rule
// when it fired), so a clean run still advertises what was checked.
func WriteSARIF(w io.Writer, diags []Diagnostic) error {
	ruleIndex := make(map[string]int)
	var rules []sarifRule
	addRule := func(id, doc string) {
		if _, ok := ruleIndex[id]; ok {
			return
		}
		ruleIndex[id] = len(rules)
		rules = append(rules, sarifRule{ID: id, ShortDescription: sarifMessage{Text: doc}})
	}
	for _, a := range All() {
		addRule(a.Name, a.Doc)
	}
	for _, d := range diags {
		addRule(d.Analyzer, "lint directive hygiene") // only "directive" reaches this
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		results = append(results, sarifResult{
			RuleID:    d.Analyzer,
			RuleIndex: ruleIndex[d.Analyzer],
			Level:     "error",
			Message:   sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: d.File, URIBaseID: "%SRCROOT%"},
					Region:           sarifRegion{StartLine: d.Line, StartColumn: d.Col},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  sarifSchema,
		Version: sarifVersion,
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "ipglint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// ParseSARIF reads back a SARIF log produced by WriteSARIF and returns
// the diagnostics it carries.  It is the round-trip half the CI tests
// use to prove the emitted report is lossless for analyzer, position,
// and message.
func ParseSARIF(r io.Reader) ([]Diagnostic, error) {
	var log sarifLog
	if err := json.NewDecoder(r).Decode(&log); err != nil {
		return nil, err
	}
	var diags []Diagnostic
	for _, run := range log.Runs {
		for _, res := range run.Results {
			d := Diagnostic{Analyzer: res.RuleID, Message: res.Message.Text}
			if len(res.Locations) > 0 {
				loc := res.Locations[0].PhysicalLocation
				d.File = loc.ArtifactLocation.URI
				d.Line = loc.Region.StartLine
				d.Col = loc.Region.StartColumn
			}
			diags = append(diags, d)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Col < b.Col
	})
	return diags, nil
}
