package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicMix flags variables and fields that are updated through
// sync/atomic in one place and read or written with plain loads/stores in
// another.  Mixed access is the textbook "benign race" that isn't: the
// compiler may tear, cache, or reorder the plain access, and the race
// detector only catches it when both sides execute in the same run.
//
// Detection is interprocedural through address-passing helpers: a pointer
// parameter that flows into a sync/atomic call (directly or through
// another such helper) makes the callee an "atomic sink", so
// topo.AtomicMaxInt64(&x, v) marks x atomic just like atomic.AddInt64(&x,
// 1) does.  Every identifier use of an atomic object outside an
// atomic-call argument is then reported, with the atomic site cited.
// Declarations and := initializers are not uses (initialization before
// the variable is shared is fine); re-assignment after sharing is exactly
// the bug, so plain `x = 0` resets are reported.  The fix is a typed
// atomic (atomic.Int64) whose plain access is unrepresentable.
var AtomicMix = &Analyzer{
	Name:   "atomicmix",
	Doc:    "variable accessed both via sync/atomic and via plain loads/stores",
	Module: true,
	Run:    runAtomicMix,
}

func runAtomicMix(pass *Pass) {
	cg := pass.Prog.CallGraph()
	am := &atomicMix{
		pass:    pass,
		cg:      cg,
		sinks:   make(map[string]bool),
		atomics: make(map[string]token.Pos),
		allowed: make(map[*ast.Ident]bool),
	}
	// Seed: parameters passed straight into sync/atomic calls, then a
	// fixpoint so helpers-of-helpers (AtomicMaxInt64's CAS loop) become
	// sinks too.  Each sweep also records the objects whose address
	// reaches an atomic op and the exact idents doing so.
	for changed := true; changed; {
		changed = false
		for _, fn := range cg.Funcs {
			if fn.Body() == nil {
				continue
			}
			if am.scanFunc(fn) {
				changed = true
			}
		}
	}
	am.reportPlainUses()
}

// atomicMix keys its sets by declaration position (posKey), not object
// identity, so a helper's sink parameter and an atomic variable keep one
// identity across the per-package type-check universes.
type atomicMix struct {
	pass    *Pass
	cg      *CallGraph
	sinks   map[string]bool      // pointer params (by posKey) that reach an atomic op
	atomics map[string]token.Pos // objects (by posKey) atomically accessed, with one site
	allowed map[*ast.Ident]bool  // idents that ARE the atomic access
}

// scanFunc processes every call in fn once, returning whether the sink or
// atomic sets grew.
func (am *atomicMix) scanFunc(fn *Func) bool {
	pkg := fn.Pkg
	changed := false
	fset := am.pass.Fset
	markAtomic := func(obj types.Object, pos token.Pos) {
		k := posKey(fset, obj)
		if k == "" {
			return
		}
		if _, ok := am.atomics[k]; !ok {
			am.atomics[k] = pos
			changed = true
		}
	}
	markSink := func(v *types.Var) {
		k := posKey(fset, v)
		if k != "" && !am.sinks[k] {
			am.sinks[k] = true
			changed = true
		}
	}
	inspectShallow(fn.Body(), func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		callee := staticCallee(pkg, call)
		if callee == nil {
			return
		}
		sinkArg := func(i int) bool {
			if isSyncAtomic(callee) {
				return true // every pointer arg of an atomic func is the target
			}
			if sig, ok := callee.Type().(*types.Signature); ok && i < sig.Params().Len() {
				return am.sinks[posKey(fset, sig.Params().At(i))]
			}
			return false
		}
		for i, arg := range call.Args {
			if !sinkArg(i) {
				continue
			}
			switch a := ast.Unparen(arg).(type) {
			case *ast.UnaryExpr:
				if a.Op != token.AND {
					continue
				}
				switch x := ast.Unparen(a.X).(type) {
				case *ast.Ident:
					am.allowed[x] = true
					markAtomic(objOf(pkg, x), x.Pos())
				case *ast.SelectorExpr:
					am.allowed[x.Sel] = true
					markAtomic(pkg.Info.Uses[x.Sel], x.Sel.Pos())
				case *ast.IndexExpr:
					// &arr[i]: element granularity is beyond object
					// tracking; skip rather than taint the whole slice.
				}
			case *ast.Ident:
				// Pointer passed through: the enclosing function's
				// parameter becomes a sink itself.
				if v, ok := objOf(pkg, a).(*types.Var); ok && isPointer(v.Type()) && isParamOf(fn, v) {
					am.allowed[a] = true
					markSink(v)
				}
			}
		}
	})
	return changed
}

func isSyncAtomic(fn *types.Func) bool {
	return fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic"
}

func isPointer(t types.Type) bool {
	_, ok := t.Underlying().(*types.Pointer)
	return ok
}

// isParamOf reports whether v is a parameter of fn's declaration.
func isParamOf(fn *Func, v *types.Var) bool {
	if fn.Obj == nil {
		return false
	}
	sig, ok := fn.Obj.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if sig.Params().At(i) == v {
			return true
		}
	}
	return false
}

func objOf(pkg *Package, id *ast.Ident) types.Object {
	if obj := pkg.Info.Uses[id]; obj != nil {
		return obj
	}
	return pkg.Info.Defs[id]
}

// reportPlainUses walks every file and reports identifier uses of atomic
// objects that are not themselves the atomic access.
func (am *atomicMix) reportPlainUses() {
	for _, pkg := range am.pass.Prog.Packages {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok || am.allowed[id] {
					return true
				}
				obj := pkg.Info.Uses[id]
				if obj == nil {
					return true
				}
				site, atomic := am.atomics[posKey(am.pass.Fset, obj)]
				if !atomic {
					return true
				}
				am.pass.Reportf(id.Pos(),
					"%s is accessed with sync/atomic at %s; this plain access can race with it — use a typed atomic (atomic.Int64) or guard both sides with one mutex",
					id.Name, am.pass.Fset.Position(site))
				return true
			})
		}
	}
}
