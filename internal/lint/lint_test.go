package lint

import (
	"bufio"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// wantRE extracts `// want "regex"` and `// want:next "regex"` expectation
// comments from fixture sources.  The :next form attaches the expectation
// to the following line — needed when the expected diagnostic is about a
// directive comment, which cannot share its line with a want comment.
var wantRE = regexp.MustCompile(`// want(:next)? ("(?:[^"\\]|\\.)*")`)

type wantDiag struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

// parseWants scans every .go file in dir for want comments.
func parseWants(t *testing.T, dir string) []*wantDiag {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var wants []*wantDiag
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			m := wantRE.FindStringSubmatch(sc.Text())
			if m == nil {
				continue
			}
			pattern, err := strconv.Unquote(m[2])
			if err != nil {
				t.Fatalf("%s:%d: bad want string %s: %v", path, line, m[2], err)
			}
			re, err := regexp.Compile(pattern)
			if err != nil {
				t.Fatalf("%s:%d: bad want regexp %q: %v", path, line, pattern, err)
			}
			target := line
			if m[1] == ":next" {
				target = line + 1
			}
			wants = append(wants, &wantDiag{file: path, line: target, re: re, raw: m[2]})
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	return wants
}

// runFixture loads testdata/<name>, runs the analyzers, and cross-checks
// the diagnostics against the want comments in both directions.
func runFixture(t *testing.T, name string, analyzers []*Analyzer) {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	l := NewLoader()
	pkg, err := l.LoadDir(dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	diags := Run(l.Fset, []*Package{pkg}, analyzers)
	wants := parseWants(t, dir)
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == d.File && w.line == d.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d.String())
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matching %s", w.file, w.line, w.raw)
		}
	}
}

func TestPermAliasFixture(t *testing.T) {
	runFixture(t, "permalias", []*Analyzer{PermAlias})
}

func TestIndexTruncFixture(t *testing.T) {
	runFixture(t, "indextrunc", []*Analyzer{IndexTrunc})
}

func TestGoroutineLeakFixture(t *testing.T) {
	runFixture(t, "goroutineleak", []*Analyzer{GoroutineLeak})
}

func TestErrDropFixture(t *testing.T) {
	runFixture(t, "errdrop", []*Analyzer{ErrDrop})
}

func TestAdjBuildFixture(t *testing.T) {
	runFixture(t, "adjbuild", []*Analyzer{AdjBuild})
}

func TestScratchAllocFixture(t *testing.T) {
	runFixture(t, "scratchalloc", []*Analyzer{ScratchAlloc})
}

func TestCtxFlowFixture(t *testing.T) {
	runFixture(t, "ctxflow", []*Analyzer{CtxFlow})
}

func TestPoolSafetyFixture(t *testing.T) {
	runFixture(t, "poolsafety", []*Analyzer{PoolSafety})
}

func TestLockHoldFixture(t *testing.T) {
	runFixture(t, "lockhold", []*Analyzer{LockHold})
}

func TestAtomicMixFixture(t *testing.T) {
	runFixture(t, "atomicmix", []*Analyzer{AtomicMix})
}

// TestIgnoreFixture proves the //lint:ignore and //lint:file-ignore
// directives suppress findings from the full suite, and that malformed
// directives are reported instead of silently doing nothing.
func TestIgnoreFixture(t *testing.T) {
	runFixture(t, "ignore", All())
}

func TestExpandSkipsTestdata(t *testing.T) {
	here, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := Expand(here, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) != 1 || filepath.Clean(dirs[0]) != filepath.Clean(here) {
		t.Fatalf("Expand(./...) from %s = %v, want just the package itself (testdata skipped)", here, dirs)
	}
}

func TestByName(t *testing.T) {
	for _, a := range All() {
		if ByName(a.Name) != a {
			t.Errorf("ByName(%q) did not round-trip", a.Name)
		}
	}
	if ByName("nosuchcheck") != nil {
		t.Error("ByName(nosuchcheck) should be nil")
	}
}
