package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroutineLeak flags `go` statements whose enclosing function has no
// visible join — no sync.WaitGroup-style Wait call, no channel receive, no
// select, and no range over a channel.  The worker pools in
// internal/graph/parallel.go, internal/netsim, and internal/ascend all
// follow the wg.Add / go / wg.Wait idiom; a goroutine launched without a
// join either leaks or, worse, races the function's return with its writes
// to shared buffers.
//
// The check is intraprocedural by design: handing a WaitGroup to a helper
// that joins elsewhere needs a `//lint:ignore goroutineleak <reason>`
// stating where the join lives.
var GoroutineLeak = &Analyzer{
	Name: "goroutineleak",
	Doc:  "go statement in a function with no visible join (Wait, channel receive, or select)",
	Run:  runGoroutineLeak,
}

func runGoroutineLeak(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkGoroutines(pass, fn.Body)
		}
	}
}

// checkGoroutines walks one function body, recursing manually into nested
// function literals so each `go` statement is judged against its own
// innermost enclosing function.
func checkGoroutines(pass *Pass, body *ast.BlockStmt) {
	var goStmts []*ast.GoStmt
	joined := false
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			checkGoroutines(pass, n.Body)
			return false
		case *ast.GoStmt:
			goStmts = append(goStmts, n)
			// The spawned callee runs in the new goroutine; joins inside it
			// do not join it.  Its body (if a literal) was handled above via
			// FuncLit recursion, so only inspect the arguments here.
			for _, arg := range n.Call.Args {
				ast.Inspect(arg, walk)
			}
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				checkGoroutines(pass, lit.Body)
			}
			return false
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
				joined = true
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				joined = true
			}
		case *ast.SelectStmt:
			joined = true
		case *ast.RangeStmt:
			if tv, ok := pass.Info.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					joined = true
				}
			}
		}
		return true
	}
	ast.Inspect(body, walk)
	if joined {
		return
	}
	for _, g := range goStmts {
		pass.Reportf(g.Pos(), "goroutine started here but the enclosing function never joins it (no Wait call, channel receive, or select)")
	}
}
