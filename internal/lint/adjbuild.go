package lint

import (
	"go/ast"
	"strings"
)

// AdjBuild flags the `[][]int32` adjacency-list type spelled anywhere
// outside the topology core (internal/graph and internal/topo).  The
// repository keeps exactly one adjacency representation — the flat CSR
// arena in internal/topo — and every per-row `[][]int32` that reappears in
// a builder, simulator, or scheduler is a second copy of the graph: it
// costs a slice header and an allocation per vertex, defeats the shared
// BFS kernel, and reintroduces the representation drift this refactor
// removed.  Build edge sets with graph.FromStream / topo.Build, port
// tables with topo.PortMap, and per-dimension id caches as flat strided
// []int32 slabs.
//
// The check is purely syntactic (any nested slice type with element int32
// and no fixed lengths), so it catches make() calls, composite literals,
// struct fields, parameters, and variable declarations alike.  Test files
// are exempt: tests legitimately build small per-row adjacency fixtures
// to compare against the CSR core, which is the point of the rule, not a
// violation of it.
var AdjBuild = &Analyzer{
	Name: "adjbuild",
	Doc:  "[][]int32 adjacency built outside the internal/graph + internal/topo core",
	Run:  runAdjBuild,
}

// adjExemptSuffixes are the package paths allowed to spell [][]int32: the
// topology core itself, where the conversions between row and flat form
// live.  Pkg.Path() is the loaded directory path, so match by suffix with
// normalized separators.
var adjExemptSuffixes = []string{"internal/graph", "internal/topo"}

func runAdjBuild(pass *Pass) {
	path := strings.ReplaceAll(pass.Pkg.Path(), "\\", "/")
	for _, suffix := range adjExemptSuffixes {
		if strings.HasSuffix(path, suffix) {
			return
		}
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			outer, ok := n.(*ast.ArrayType)
			if !ok || outer.Len != nil {
				return true
			}
			inner, ok := outer.Elt.(*ast.ArrayType)
			if !ok || inner.Len != nil {
				return true
			}
			if id, ok := inner.Elt.(*ast.Ident); ok && id.Name == "int32" {
				pass.Reportf(outer.Pos(),
					"[][]int32 adjacency outside internal/graph + internal/topo; use the CSR/PortMap core or a flat strided []int32")
				return false // don't re-report the inner []int32
			}
			return true
		})
	}
}
