package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	Dir   string // directory as given to the loader (diagnostic paths derive from it)
	Name  string // package name from the source
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	directives *fileDirectives
}

// Loader parses and type-checks package directories.  Imports — both
// standard library and module-internal — are resolved by the "source"
// importer, which compiles dependencies from source and therefore works
// offline with no compiled export data.
type Loader struct {
	Fset *token.FileSet
	// IncludeTests adds in-package *_test.go files to each package's
	// type-check universe, so the analyzers cover test code too.  External
	// test packages (package foo_test) would need a second universe per
	// directory and are skipped either way.
	IncludeTests bool
	imp          types.Importer
}

// NewLoader returns a ready Loader with a fresh FileSet.  Test files are
// included by default; callers that only care about production code set
// IncludeTests to false.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset:         fset,
		IncludeTests: true,
		imp:          importer.ForCompiler(fset, "source", nil),
	}
}

// Expand resolves package patterns relative to dir.  Supported forms are
// "./...", "path/...", and plain directories.  Directories named testdata
// or vendor, and hidden or underscore-prefixed directories, are skipped,
// matching the go tool's convention.  Only directories containing at least
// one non-test .go file are returned.
func Expand(dir string, patterns []string) ([]string, error) {
	var out []string
	seen := make(map[string]bool)
	add := func(d string) {
		d = filepath.Clean(d)
		if !seen[d] && hasGoFiles(d) {
			seen[d] = true
			out = append(out, d)
		}
	}
	for _, pat := range patterns {
		if pat == "" {
			continue
		}
		if base, ok := strings.CutSuffix(pat, "..."); ok {
			base = strings.TrimSuffix(base, "/")
			if base == "" || base == "." {
				base = dir
			} else if !filepath.IsAbs(base) {
				base = filepath.Join(dir, base)
			}
			err := filepath.WalkDir(base, func(path string, de os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !de.IsDir() {
					return nil
				}
				name := de.Name()
				if path != base && (name == "testdata" || name == "vendor" ||
					strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				add(path)
				return nil
			})
			if err != nil {
				return nil, fmt.Errorf("lint: expanding %q: %w", pat, err)
			}
			continue
		}
		p := pat
		if !filepath.IsAbs(p) {
			p = filepath.Join(dir, p)
		}
		if fi, err := os.Stat(p); err != nil || !fi.IsDir() {
			return nil, fmt.Errorf("lint: pattern %q is not a package directory", pat)
		}
		add(p)
	}
	sort.Strings(out)
	return out, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") &&
			!strings.HasPrefix(name, ".") && !strings.HasPrefix(name, "_") {
			return true
		}
	}
	return false
}

// LoadDir parses and type-checks the Go files of one directory.  When
// IncludeTests is set, in-package *_test.go files join the same type-check
// universe (how `go test` compiles them), so the analyzers see the test
// half of the codebase too.  External test packages (package foo_test)
// are skipped: they are a second package per directory, and none of the
// bug classes the suite encodes live behind an export boundary.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	var files []*ast.File
	var testNames []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		if strings.HasSuffix(name, "_test.go") {
			testNames = append(testNames, name)
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no buildable Go files in %s", dir)
	}
	if l.IncludeTests {
		pkgName := files[0].Name.Name
		for _, name := range testNames {
			f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("lint: %w", err)
			}
			if f.Name.Name != pkgName {
				continue // external test package
			}
			files = append(files, f)
		}
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: l.imp}
	tpkg, err := conf.Check(dir, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", dir, err)
	}
	return &Package{
		Dir:   dir,
		Name:  files[0].Name.Name,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

// Load expands patterns relative to dir and loads every matched package
// with a fresh default Loader (test files included).
func Load(dir string, patterns []string) (*token.FileSet, []*Package, error) {
	return NewLoader().Load(dir, patterns)
}

// Load expands patterns relative to dir and loads every matched package.
func (l *Loader) Load(dir string, patterns []string) (*token.FileSet, []*Package, error) {
	dirs, err := Expand(dir, patterns)
	if err != nil {
		return nil, nil, err
	}
	if len(dirs) == 0 {
		return nil, nil, fmt.Errorf("lint: no packages match %v", patterns)
	}
	var pkgs []*Package
	for _, d := range dirs {
		pkg, err := l.LoadDir(d)
		if err != nil {
			return nil, nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return l.Fset, pkgs, nil
}
