package lint

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// loadEngineFixture loads the testdata/callgraph package, the common
// subject of the call-graph golden test and the CFG shape tests.
func loadEngineFixture(t *testing.T) *Program {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", "callgraph"))
	if err != nil {
		t.Fatal(err)
	}
	l := NewLoader()
	pkg, err := l.LoadDir(dir)
	if err != nil {
		t.Fatalf("loading callgraph fixture: %v", err)
	}
	return &Program{Fset: l.Fset, Packages: []*Package{pkg}}
}

func findFunc(t *testing.T, prog *Program, name string) *Func {
	t.Helper()
	for _, f := range prog.CallGraph().Funcs {
		if f.Name() == name {
			return f
		}
	}
	t.Fatalf("function %s not found in fixture", name)
	return nil
}

// TestCallGraphGolden pins the full edge set of the fixture, one edge per
// resolution mode: direct call, method call, binding through a func-valued
// field, immediate literal invocation, literal nesting, interface
// dispatch, and a deferred call.
func TestCallGraphGolden(t *testing.T) {
	prog := loadEngineFixture(t)
	got := prog.CallGraph().EdgeStrings()
	want := []string{
		"cg.(Ops).run -> cg.leaf",
		"cg.DeferShape -> cg.leaf",
		"cg.Through -> cg.(A).Str",
		"cg.Top -> cg.(Ops).run",
		"cg.Top -> cg.Top$1",
		"cg.Top -> cg.mid",
		"cg.Top$1 -> cg.leaf",
		"cg.mid -> cg.leaf",
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("call graph edges:\ngot:\n  %s\nwant:\n  %s",
			strings.Join(got, "\n  "), strings.Join(want, "\n  "))
	}
}

// TestCFGShapes pins the rendered block structure of each lowering the
// analyzers rely on: branch joins, loop back edges, select clause fan-out,
// and the unreachable continuation block a return leaves behind.
func TestCFGShapes(t *testing.T) {
	prog := loadEngineFixture(t)
	cases := []struct {
		fn   string
		want string
	}{
		{"cg.IfShape", `b0 entry [cond] -> [1 2]
b1 [incdec] -> [2]
b2 [return] -> [4]
b3 [] -> [4]
b4 exit [] -> []
`},
		{"cg.LoopShape", `b0 entry [assign assign] -> [1]
b1 [cond] -> [2 3]
b2 [assign] -> [4]
b3 [return] -> [6]
b4 [incdec] -> [1]
b5 [] -> [6]
b6 exit [] -> []
`},
		{"cg.SelectShape", `b0 entry [select] -> [2 4]
b1 [] -> [6]
b2 [assign return] -> [6]
b3 [] -> [1]
b4 [return] -> [6]
b5 [] -> [1]
b6 exit [] -> []
`},
		{"cg.DeferShape", `b0 entry [defer expr] -> [1]
b1 exit [] -> []
`},
	}
	for _, tc := range cases {
		f := findFunc(t, prog, tc.fn)
		if got := prog.CFG(f).String(); got != tc.want {
			t.Errorf("%s CFG:\ngot:\n%swant:\n%s", tc.fn, got, tc.want)
		}
	}
}

// TestCFGSideTables checks the two side tables the analyzers consume: the
// deferred-statement list (poolsafety) and the select-comm marker set
// (lockhold's exemption of committed channel operations).
func TestCFGSideTables(t *testing.T) {
	prog := loadEngineFixture(t)
	if d := prog.CFG(findFunc(t, prog, "cg.DeferShape")).Defers; len(d) != 1 {
		t.Errorf("DeferShape: %d deferred statements recorded, want 1", len(d))
	}
	if c := prog.CFG(findFunc(t, prog, "cg.SelectShape")).Comm; len(c) != 1 {
		t.Errorf("SelectShape: %d comm statements recorded, want 1", len(c))
	}
}
