package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// CtxFlow checks that cancellation actually reaches the loops that need
// it.  A request that asks for metrics over a 10M-vertex topology must be
// abortable: the HTTP server cancels r.Context() when the client goes
// away, but that only helps if every function on the call path from the
// handler down to the vertex-scale loop accepts a context and consults it.
//
// The analyzer is interprocedural: it marks entry points (HTTP handlers by
// signature, Run*-prefixed and *Ctx-suffixed exported functions), walks
// the module call graph to find every function reachable from one, and
// inside those functions looks for loops whose trip count scales with the
// graph (vertex/arc counts or round budgets — see the taint sources in
// scaleTaint).  Such a loop must contain some use of a context.Context:
// a ctx.Err() poll, a select on ctx.Done(), or handing ctx to a callee
// that does the checking.  Two findings result:
//
//   - the function has no context in scope at all: the signature needs a
//     context.Context parameter threaded from the entry point;
//   - a context is in scope but the loop never consults it.
//
// Kernels that deliberately poll at a coarser granularity (per batch, per
// BFS level) suppress with a directive citing that invariant.
var CtxFlow = &Analyzer{
	Name:   "ctxflow",
	Doc:    "cancellation-reachable vertex/round-scale loops must consult a context.Context",
	Module: true,
	Run:    runCtxFlow,
}

func runCtxFlow(pass *Pass) {
	cg := pass.Prog.CallGraph()

	// BFS from the entry points, remembering which entry first reached
	// each function so diagnostics can name a concrete cancellable path.
	entryOf := make(map[*Func]string)
	var queue []*Func
	for _, f := range cg.Funcs {
		if f.Decl != nil && isCtxEntry(f) && !pass.InTestFile(f.Pos()) {
			entryOf[f] = f.Name()
			queue = append(queue, f)
		}
	}
	for len(queue) > 0 {
		f := queue[0]
		queue = queue[1:]
		for _, c := range cg.Callees(f) {
			if _, ok := entryOf[c]; !ok {
				entryOf[c] = entryOf[f]
				queue = append(queue, c)
			}
		}
	}

	taints := make(map[*Func]taintSet) // keyed by root declaration
	for _, f := range cg.Funcs {
		entry, ok := entryOf[f]
		if !ok || f.Body() == nil || pass.InTestFile(f.Pos()) {
			continue
		}
		root := f.Root()
		taint, ok := taints[root]
		if !ok {
			taint = scaleTaint(root)
			taints[root] = taint
		}
		hasCtx := hasContextExpr(f.Pkg, f.Body())
		// One finding per function: the first unchecked loop anchors it and
		// the rest are counted, so a kernel with a dozen scale loops reads
		// as one actionable diagnostic, not twelve.
		var first ast.Node
		extra := 0
		inspectShallow(f.Body(), func(n ast.Node) {
			loop, ok := scaleLoop(f.Pkg, taint, n)
			if !ok || hasContextExpr(f.Pkg, loop) {
				return
			}
			if first == nil {
				first = loop
			} else {
				extra++
			}
		})
		if first == nil {
			continue
		}
		more := ""
		if extra > 0 {
			more = fmt.Sprintf(" (and %d more such loops below)", extra)
		}
		if !hasCtx {
			pass.Reportf(first.Pos(),
				"%s is reachable from %s and loops over vertex/round-scale data with no context.Context in scope; thread one through and check it in this loop%s",
				funcDisplay(f), entry, more)
		} else {
			pass.Reportf(first.Pos(),
				"vertex/round-scale loop in %s (reachable from %s) never consults the in-scope context.Context; poll ctx.Err() or select on ctx.Done()%s",
				funcDisplay(f), entry, more)
		}
	}
}

// isCtxEntry reports whether a declared function is a cancellation entry
// point: an HTTP handler by signature, or a Run*/-Ctx API by name.
func isCtxEntry(f *Func) bool {
	if f.Obj == nil {
		return false
	}
	name := f.Obj.Name()
	if strings.HasPrefix(name, "Run") || strings.HasSuffix(name, "Ctx") {
		return true
	}
	sig, ok := f.Obj.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isNetHTTPType(sig.Params().At(i).Type(), "ResponseWriter") ||
			isNetHTTPType(sig.Params().At(i).Type(), "Request") {
			return true
		}
	}
	return false
}

func isNetHTTPType(t types.Type, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "net/http" && n.Obj().Name() == name
}

func isContextType(t types.Type) bool {
	if t == nil {
		return false
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "context" && n.Obj().Name() == "Context"
}

// hasContextExpr reports whether any expression under n has static type
// context.Context — a parameter use, a captured ctx, or an r.Context()
// call all count: each is a live handle the code could check or pass on.
func hasContextExpr(pkg *Package, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		e, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		if tv, ok := pkg.Info.Types[e]; ok && isContextType(tv.Type) {
			found = true
			return false
		}
		if id, ok := e.(*ast.Ident); ok {
			if obj := pkg.Info.Uses[id]; obj != nil && isContextType(obj.Type()) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// taintSet marks variables whose value scales with the graph.
type taintSet map[types.Object]bool

// scaleTaint runs a small intra-procedural taint fixpoint over a root
// declaration (nested literals included, so captured bounds stay tainted
// inside goroutine bodies).  Sources:
//
//   - zero-argument calls to N/M/NumVertices/NumArcs methods,
//   - selector reads of integer fields named N or M,
//   - len() of a non-call []int32/[]int64/[]uint64 expression (frontier
//     queues, distance vectors, bitset rows),
//   - indexing into []int32/[]int64 (distance reads seed backtrack loops),
//   - integer parameters named rounds/maxRounds/warmup/measure/steps.
//
// Assignments propagate: any variable assigned an expression containing a
// tainted value becomes tainted.
func scaleTaint(root *Func) taintSet {
	taint := make(taintSet)
	pkg := root.Pkg
	body := root.Body()
	if body == nil {
		return taint
	}
	seedParams := func(ft *ast.FuncType) {
		if ft.Params == nil {
			return
		}
		for _, field := range ft.Params.List {
			for _, name := range field.Names {
				switch name.Name {
				case "rounds", "maxRounds", "warmup", "measure", "steps":
					if obj := pkg.Info.Defs[name]; obj != nil && isIntegral(obj.Type()) {
						taint[obj] = true
					}
				}
			}
		}
	}
	seedParams(root.FuncType())
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			seedParams(lit.Type)
		}
		return true
	})

	assign := func(lhs ast.Expr, rhs ast.Expr) bool {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			return false
		}
		obj := pkg.Info.Defs[id]
		if obj == nil {
			obj = pkg.Info.Uses[id]
		}
		if obj == nil || taint[obj] || !exprTainted(pkg, taint, rhs) {
			return false
		}
		taint[obj] = true
		return true
	}
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) == len(n.Rhs) {
					for i := range n.Lhs {
						if assign(n.Lhs[i], n.Rhs[i]) {
							changed = true
						}
					}
				}
			case *ast.ValueSpec:
				if len(n.Names) == len(n.Values) {
					for i := range n.Names {
						if assign(n.Names[i], n.Values[i]) {
							changed = true
						}
					}
				}
			}
			return true
		})
	}
	return taint
}

// exprTainted reports whether e contains a scale-tainted value.
func exprTainted(pkg *Package, taint taintSet, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.Ident:
			if obj := pkg.Info.Uses[n]; obj != nil && taint[obj] {
				found = true
			}
		case *ast.SelectorExpr:
			if (n.Sel.Name == "N" || n.Sel.Name == "M") && fieldRead(pkg, n) {
				found = true
			}
		case *ast.CallExpr:
			if name, nargs := calleeShortName(n), len(n.Args); nargs == 0 {
				switch name {
				case "N", "M", "NumVertices", "NumArcs":
					found = true
				}
			}
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "len" && len(n.Args) == 1 {
				arg := ast.Unparen(n.Args[0])
				if _, isCall := arg.(*ast.CallExpr); !isCall && isScaleSlice(pkg, arg) {
					found = true
				}
			}
		case *ast.IndexExpr:
			if isScaleSlice(pkg, n.X) {
				found = true
			}
		}
		return !found
	})
	return found
}

// fieldRead reports whether sel reads an integer struct field (not a
// method value or call).
func fieldRead(pkg *Package, sel *ast.SelectorExpr) bool {
	obj := pkg.Info.Uses[sel.Sel]
	v, ok := obj.(*types.Var)
	return ok && v.IsField() && isIntegral(v.Type())
}

func isIntegral(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// isScaleSlice reports whether e has type []int32, []int64, or []uint64 —
// the buffer shapes every vertex-sized structure in this module uses
// (distance vectors, frontier queues, MSBFS words).
func isScaleSlice(pkg *Package, e ast.Expr) bool {
	tv, ok := pkg.Info.Types[ast.Unparen(e)]
	if !ok || tv.Type == nil {
		return false
	}
	s, ok := tv.Type.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	if !ok {
		return false
	}
	switch b.Kind() {
	case types.Int32, types.Int64, types.Uint64:
		return true
	}
	return false
}

// calleeShortName returns the rightmost identifier of a call's callee.
func calleeShortName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// scaleLoop reports whether n is a loop whose trip count scales with the
// graph, returning the loop node for position/ctx-scan purposes.
func scaleLoop(pkg *Package, taint taintSet, n ast.Node) (ast.Node, bool) {
	switch n := n.(type) {
	case *ast.ForStmt:
		if n.Cond != nil && exprTainted(pkg, taint, n.Cond) {
			return n, true
		}
	case *ast.RangeStmt:
		x := ast.Unparen(n.X)
		if _, isCall := x.(*ast.CallExpr); isCall {
			return nil, false
		}
		if isScaleSlice(pkg, x) || exprTainted(pkg, taint, x) {
			return n, true
		}
	}
	return nil, false
}
