package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Baseline support: a committed snapshot of known findings that a CI run
// subtracts before failing.  The intended steady state for this
// repository is an EMPTY baseline — the file exists so CI can assert
// that nobody quietly grandfathers a finding in — but the mechanism is a
// real ratchet: adopting the suite on a dirty tree means writing the
// current findings once and burning them down without blocking CI in
// the meantime.
//
// Entries are matched by (analyzer, file, message), deliberately NOT by
// line: unrelated edits above a grandfathered finding must not make it
// "new".  Matching consumes multiset counts, so adding a second
// identical finding in the same file is still caught.

// BaselineEntry is one grandfathered finding.  Line is recorded for
// human readers of the file but ignored during matching.
type BaselineEntry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Message  string `json:"message"`
}

// Baseline is a committed set of grandfathered findings.
type Baseline struct {
	Version  int             `json:"version"`
	Findings []BaselineEntry `json:"findings"`
}

const baselineVersion = 1

func baselineKey(analyzer, file, message string) string {
	return analyzer + "\x00" + file + "\x00" + message
}

// NewBaseline snapshots diagnostics into a baseline, sorted for stable
// diffs of the committed file.
func NewBaseline(diags []Diagnostic) Baseline {
	b := Baseline{Version: baselineVersion, Findings: make([]BaselineEntry, 0, len(diags))}
	for _, d := range diags {
		b.Findings = append(b.Findings, BaselineEntry{
			Analyzer: d.Analyzer, File: d.File, Line: d.Line, Message: d.Message,
		})
	}
	sort.Slice(b.Findings, func(i, j int) bool {
		x, y := b.Findings[i], b.Findings[j]
		if x.File != y.File {
			return x.File < y.File
		}
		if x.Line != y.Line {
			return x.Line < y.Line
		}
		return x.Message < y.Message
	})
	return b
}

// WriteBaseline serializes b as indented JSON.
func WriteBaseline(w io.Writer, b Baseline) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// ReadBaseline parses a baseline file, rejecting unknown versions so a
// future format change fails loudly instead of silently matching
// nothing.
func ReadBaseline(r io.Reader) (Baseline, error) {
	var b Baseline
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&b); err != nil {
		return Baseline{}, fmt.Errorf("lint: parsing baseline: %w", err)
	}
	if b.Version != baselineVersion {
		return Baseline{}, fmt.Errorf("lint: unsupported baseline version %d (want %d)", b.Version, baselineVersion)
	}
	return b, nil
}

// Filter returns the diagnostics not covered by the baseline.  Each
// baseline entry absorbs at most one finding with the same analyzer,
// file, and message, so duplicates beyond the grandfathered count still
// surface.
func (b Baseline) Filter(diags []Diagnostic) []Diagnostic {
	budget := make(map[string]int, len(b.Findings))
	for _, e := range b.Findings {
		budget[baselineKey(e.Analyzer, e.File, e.Message)]++
	}
	kept := make([]Diagnostic, 0, len(diags))
	for _, d := range diags {
		k := baselineKey(d.Analyzer, d.File, d.Message)
		if budget[k] > 0 {
			budget[k]--
			continue
		}
		kept = append(kept, d)
	}
	return kept
}
