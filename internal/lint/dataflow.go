package lint

import "go/ast"

// A small forward-dataflow framework over the CFG.  Analyzers supply the
// lattice (join, equality), the initial fact at function entry, and a
// transfer function applied to each block node in order; the framework
// iterates to a fixpoint with a worklist.  Facts must be treated as
// immutable by Transfer and Join (return fresh values), so a fact can be
// shared between blocks.
//
// poolsafety and lockhold are built on this; ctxflow uses the simpler
// taint fixpoint in ctxflow.go because its facts are order-insensitive.

// FlowSpec defines one forward analysis with fact type T.
type FlowSpec[T any] struct {
	// Entry is the fact at function entry.
	Entry T
	// Transfer folds one block node into the incoming fact.
	Transfer func(blk *Block, n ast.Node, in T) T
	// Join merges facts at control-flow merges.
	Join func(a, b T) T
	// Equal reports fact equality (fixpoint detection).
	Equal func(a, b T) bool
}

// FlowResult carries the per-block facts of one analysis run.
type FlowResult[T any] struct {
	// In is the fact at block entry, Out at block exit.
	In, Out map[*Block]T
}

// Forward runs spec over c to a fixpoint and returns the block facts.
func Forward[T any](c *CFG, spec FlowSpec[T]) FlowResult[T] {
	res := FlowResult[T]{In: make(map[*Block]T), Out: make(map[*Block]T)}
	seeded := map[*Block]bool{c.Entry: true}
	res.In[c.Entry] = spec.Entry

	apply := func(blk *Block) T {
		fact := res.In[blk]
		for _, n := range blk.Nodes {
			fact = spec.Transfer(blk, n, fact)
		}
		return fact
	}

	work := []*Block{c.Entry}
	inWork := map[*Block]bool{c.Entry: true}
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		inWork[blk] = false
		out := apply(blk)
		res.Out[blk] = out
		for _, succ := range blk.Succs {
			var next T
			if seeded[succ] {
				next = spec.Join(res.In[succ], out)
			} else {
				next = out
			}
			if !seeded[succ] || !spec.Equal(next, res.In[succ]) {
				res.In[succ] = next
				seeded[succ] = true
				if !inWork[succ] {
					inWork[succ] = true
					work = append(work, succ)
				}
			}
		}
	}
	return res
}
