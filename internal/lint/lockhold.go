package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LockHold flags mutexes held across operations that can block for an
// unbounded time: channel sends/receives, selects with no default,
// WaitGroup/Cond waits, sleeps, and writes to network-backed writers.
// Every shard lock in the cache and every daemon-state mutex sits on a
// request path; one Fprintf to a stalled client while holding it turns a
// slow peer into a server-wide stall (this exact bug lived in the
// /metrics handler — see internal/serve/metrics.go history).
//
// The analyzer is interprocedural in one direction: a per-function
// "may-block" summary is computed over the call graph first (a function
// blocks if it performs a blocking operation or calls — synchronously —
// anything that does), then a CFG dataflow per function tracks the set of
// locks that may be held at each node and reports any blocking operation
// or may-block call executed under one.
//
// Deliberate non-findings: `go f()` under a lock does not block (the
// goroutine runs concurrently); deferred calls run at return, after the
// paired deferred unlock in the usual idiom, so they are skipped; a
// select with a default branch is a poll; the channel operation inside a
// select comm clause is accounted to the select, not double-counted.
// A deferred Unlock does NOT clear the held set — that is the point: the
// lock really is held until return, so blocking calls after
// `defer mu.Unlock()` are real findings.
var LockHold = &Analyzer{
	Name:   "lockhold",
	Doc:    "mutex held across channel ops, waits, sleeps, or network writes",
	Module: true,
	Run:    runLockHold,
}

type lockFact map[string]bool // rendered lock expr -> may be held

func runLockHold(pass *Pass) {
	cg := pass.Prog.CallGraph()
	lh := &lockHold{pass: pass, cg: cg, seen: make(map[string]bool)}
	lh.summarize()

	for _, fn := range cg.Funcs {
		if fn.Body() == nil || !lh.locksAnything(fn) {
			continue
		}
		lh.checkFunc(fn)
	}
}

type lockHold struct {
	pass *Pass
	cg   *CallGraph
	seen map[string]bool

	mayBlock map[*Func]bool
	why      map[*Func]string // root cause for diagnostics
}

// summarize computes the may-block bit per function: direct blocking
// operations first, then a fixpoint over synchronous call edges (calls
// under `go` or `defer` do not propagate).
func (lh *lockHold) summarize() {
	lh.mayBlock = make(map[*Func]bool)
	lh.why = make(map[*Func]string)
	async := make(map[*ast.CallExpr]bool)
	for _, fn := range lh.cg.Funcs {
		if fn.Body() == nil {
			continue
		}
		inspectShallow(fn.Body(), func(n ast.Node) {
			switch n := n.(type) {
			case *ast.GoStmt:
				async[n.Call] = true
			case *ast.DeferStmt:
				async[n.Call] = true
			}
		})
		if desc, ok := lh.directBlock(fn); ok {
			lh.mayBlock[fn] = true
			lh.why[fn] = desc
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range lh.cg.Funcs {
			if lh.mayBlock[fn] {
				continue
			}
			for _, c := range lh.cg.Calls(fn) {
				if async[c.Expr] {
					continue
				}
				for _, callee := range c.Callees {
					if lh.mayBlock[callee] {
						lh.mayBlock[fn] = true
						lh.why[fn] = "calls " + callee.Name() + ", which may block on " + lh.root(callee)
						changed = true
					}
				}
			}
		}
	}
}

// root unwinds a "calls X, which may block on ..." chain to its leaf
// description so diagnostics name the actual operation.
func (lh *lockHold) root(fn *Func) string {
	desc := lh.why[fn]
	if i := strings.LastIndex(desc, "may block on "); i >= 0 {
		return desc[i+len("may block on "):]
	}
	return desc
}

// directBlock scans one function body (shallow) for an intrinsically
// blocking operation and describes the first one found.
func (lh *lockHold) directBlock(fn *Func) (string, bool) {
	exempt := commChannelOps(fn.Body())
	desc, found := "", false
	inspectShallow(fn.Body(), func(n ast.Node) {
		if found {
			return
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			if !exempt[n] {
				desc, found = "a channel send", true
			}
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" && !exempt[n] {
				desc, found = "a channel receive", true
			}
		case *ast.SelectStmt:
			if !selectHasDefault(n) {
				desc, found = "a select with no default", true
			}
		case *ast.CallExpr:
			if d, ok := lh.extBlocking(fn.Pkg, n); ok {
				desc, found = d, true
			}
		}
	})
	return desc, found
}

// commChannelOps collects the channel-operation nodes that belong to
// select comm clauses; their blocking is the select's, not their own.
func commChannelOps(body *ast.BlockStmt) map[ast.Node]bool {
	exempt := make(map[ast.Node]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, clause := range sel.Body.List {
			comm, ok := clause.(*ast.CommClause)
			if !ok || comm.Comm == nil {
				continue
			}
			switch c := comm.Comm.(type) {
			case *ast.SendStmt:
				exempt[c] = true
			case *ast.ExprStmt:
				exempt[ast.Unparen(c.X)] = true
			case *ast.AssignStmt:
				if len(c.Rhs) == 1 {
					exempt[ast.Unparen(c.Rhs[0])] = true
				}
			}
		}
		return true
	})
	return exempt
}

func selectHasDefault(sel *ast.SelectStmt) bool {
	for _, clause := range sel.Body.List {
		if comm, ok := clause.(*ast.CommClause); ok && comm.Comm == nil {
			return true
		}
	}
	return false
}

// extBlocking classifies a call to a non-module function as blocking.
func (lh *lockHold) extBlocking(pkg *Package, call *ast.CallExpr) (string, bool) {
	fn := staticCallee(pkg, call)
	if fn == nil {
		return "", false
	}
	name := fn.FullName()
	switch {
	case strings.Contains(name, "sync.WaitGroup).Wait"):
		return "sync.WaitGroup.Wait", true
	case strings.Contains(name, "sync.Cond).Wait"):
		return "sync.Cond.Wait", true
	case name == "time.Sleep":
		return "time.Sleep", true
	case strings.Contains(name, "http.Client).Do"),
		name == "net/http.Get", name == "net/http.Post",
		name == "net/http.Head", name == "net/http.PostForm":
		return "an HTTP round trip", true
	}
	// Writes whose destination may be a network peer: fmt.Fprint* /
	// io.WriteString / io.Copy to anything that is not a local buffer,
	// and Write/Flush-shaped methods invoked through an interface.
	if (strings.HasPrefix(name, "fmt.Fprint") || name == "io.WriteString" || name == "io.Copy") && len(call.Args) > 0 {
		if !localBuffer(pkg, call.Args[0]) {
			return name + " to a possibly network-backed writer", true
		}
		return "", false
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		switch fn.Name() {
		case "Write", "WriteString", "ReadFrom", "Flush":
			if s, ok := pkg.Info.Selections[sel]; ok {
				if _, isIface := s.Recv().Underlying().(*types.Interface); isIface {
					return "an interface-typed " + fn.Name() + " (possibly a network write)", true
				}
			}
		}
	}
	return "", false
}

// localBuffer reports whether e's static type is an in-memory writer that
// cannot stall on a peer.
func localBuffer(pkg *Package, e ast.Expr) bool {
	tv, ok := pkg.Info.Types[ast.Unparen(e)]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	switch n.Obj().Pkg().Path() + "." + n.Obj().Name() {
	case "bytes.Buffer", "strings.Builder":
		return true
	}
	return false
}

// locksAnything pre-scans for a Lock/RLock call on a sync mutex.
func (lh *lockHold) locksAnything(fn *Func) bool {
	found := false
	inspectShallow(fn.Body(), func(n ast.Node) {
		if call, ok := n.(*ast.CallExpr); ok {
			if _, _, ok := mutexOp(fn.Pkg, call); ok {
				found = true
			}
		}
	})
	return found
}

// mutexOp decodes a call as (lockExprString, op) where op is one of
// Lock/RLock/Unlock/RUnlock on a sync.Mutex or sync.RWMutex.
func mutexOp(pkg *Package, call *ast.CallExpr) (string, string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", "", false
	}
	fn := staticCallee(pkg, call)
	if fn == nil {
		return "", "", false
	}
	full := fn.FullName()
	if !strings.Contains(full, "sync.Mutex)") && !strings.Contains(full, "sync.RWMutex)") {
		return "", "", false
	}
	switch fn.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
		return types.ExprString(sel.X), fn.Name(), true
	}
	return "", "", false
}

// checkFunc runs the held-locks dataflow over one function and reports
// blocking operations executed under a lock.
func (lh *lockHold) checkFunc(fn *Func) {
	cfg := lh.pass.Prog.CFG(fn)
	callsByExpr := make(map[*ast.CallExpr]*Call)
	for _, c := range lh.cg.Calls(fn) {
		callsByExpr[c.Expr] = c
	}
	exempt := commChannelOps(fn.Body())
	async := make(map[*ast.CallExpr]bool)
	inspectShallow(fn.Body(), func(n ast.Node) {
		switch n := n.(type) {
		case *ast.GoStmt:
			async[n.Call] = true
		case *ast.DeferStmt:
			async[n.Call] = true
		}
	})

	transfer := func(n ast.Node, in lockFact, report bool) lockFact {
		out := in
		cloned := false
		set := func(key string, held bool) {
			if !cloned {
				c := make(lockFact, len(out)+1)
				for k, v := range out {
					c[k] = v
				}
				out, cloned = c, true
			}
			if held {
				out[key] = true
			} else {
				delete(out, key)
			}
		}
		heldKeys := func() string {
			var keys []string
			for k := range out {
				keys = append(keys, k)
			}
			if len(keys) > 1 {
				// Deterministic message regardless of map order.
				for i := 1; i < len(keys); i++ {
					for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
						keys[j], keys[j-1] = keys[j-1], keys[j]
					}
				}
			}
			return strings.Join(keys, ", ")
		}
		blockDesc := func(node ast.Node) (string, bool) {
			switch node := node.(type) {
			case *ast.SendStmt:
				if !exempt[node] {
					return "a channel send", true
				}
			case *ast.UnaryExpr:
				if node.Op.String() == "<-" && !exempt[node] {
					return "a channel receive", true
				}
			case *ast.SelectStmt:
				if !selectHasDefault(node) {
					return "a select with no default", true
				}
			case *ast.CallExpr:
				if async[node] {
					return "", false
				}
				if d, ok := lh.extBlocking(fn.Pkg, node); ok {
					return d, true
				}
				if c := callsByExpr[node]; c != nil {
					for _, callee := range c.Callees {
						if lh.mayBlock[callee] {
							return "a call to " + callee.Name() + " (may block on " + lh.root(callee) + ")", true
						}
					}
				}
			}
			return "", false
		}
		// A DeferStmt's unlock runs at return; its node must neither
		// release the lock now nor count as a blocking call (async map
		// already covers the latter).
		if _, ok := n.(*ast.DeferStmt); ok {
			return out
		}
		InspectNode(n, func(node ast.Node) bool {
			if call, ok := node.(*ast.CallExpr); ok {
				if key, op, ok := mutexOp(fn.Pkg, call); ok {
					switch op {
					case "Lock", "RLock":
						set(key, true)
					case "Unlock", "RUnlock":
						set(key, false)
					}
					return true
				}
			}
			if len(out) == 0 || !report {
				return true
			}
			if desc, ok := blockDesc(node); ok {
				lh.report(node.Pos(), heldKeys(), desc)
			}
			return true
		})
		return out
	}

	res := Forward(cfg, FlowSpec[lockFact]{
		Entry: lockFact{},
		Transfer: func(_ *Block, n ast.Node, in lockFact) lockFact {
			return transfer(n, in, false)
		},
		Join: func(a, b lockFact) lockFact {
			out := make(lockFact, len(a)+len(b))
			for k := range a {
				out[k] = true
			}
			for k := range b {
				out[k] = true
			}
			return out
		},
		Equal: func(a, b lockFact) bool {
			if len(a) != len(b) {
				return false
			}
			for k := range a {
				if !b[k] {
					return false
				}
			}
			return true
		},
	})
	for _, blk := range cfg.Blocks {
		fact, ok := res.In[blk]
		if !ok {
			continue
		}
		for _, n := range blk.Nodes {
			fact = transfer(n, fact, true)
		}
	}
}

func (lh *lockHold) report(pos token.Pos, locks, desc string) {
	key := lh.pass.Fset.Position(pos).String() + "|" + locks + "|" + desc
	if lh.seen[key] {
		return
	}
	lh.seen[key] = true
	lh.pass.Reportf(pos, "%s is held across %s; release the lock first or move the blocking work out", locks, desc)
}
