package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
)

// IndexTrunc flags conversions that narrow an integer vertex index or
// count — int/int64/uint/uint64 — down to int32, uint32, or int16 without
// an overflow guard in the enclosing function.  The graph and netsim layers
// store distances, queues, and port tables as int32/int16 for cache
// density; a super-IPG configuration whose node count exceeds MaxInt32
// would silently wrap and corrupt every downstream metric.
//
// A function counts as guarded when it either references one of the
// math.MaxInt32 / math.MaxInt16 / math.MaxUint32 bounds (typically in a
// comparison feeding an error return) or calls a guard helper whose name
// matches `(?i)^check.*(count|len|range|bounds|16|32)` such as
// graph.CheckVertexCount.  Constants that provably fit the target type are
// never flagged.
var IndexTrunc = &Analyzer{
	Name: "indextrunc",
	Doc:  "int -> int32/int16/uint32 conversion of an index or count without a bounds guard",
	Run:  runIndexTrunc,
}

var guardFuncRE = regexp.MustCompile(`(?i)^check.*(count|len|range|bounds|16|32)`)

func runIndexTrunc(pass *Pass) {
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			// Truncation guards are a production-API obligation; tests cast
			// small constants and fixture sizes constantly and harmlessly.
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if funcIsGuarded(pass, fn) {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) != 1 {
					return true
				}
				target, ok := conversionTarget(pass, call)
				if !ok {
					return true
				}
				arg := call.Args[0]
				tv, ok := pass.Info.Types[arg]
				if !ok {
					return true
				}
				if !isWideInt(tv.Type) {
					return true
				}
				if tv.Value != nil {
					if constFits(tv.Value, target) {
						return true
					}
					pass.Reportf(call.Pos(), "constant %s overflows %s", tv.Value.ExactString(), target.String())
					return true
				}
				pass.Reportf(call.Pos(), "%s -> %s conversion of a non-constant index/count without a bounds guard; check against math.%s (or a Check* helper) and return an error instead of wrapping",
					tv.Type.String(), target.String(), maxConstName(target))
				return true
			})
		}
	}
}

// conversionTarget reports whether call is a type conversion to a narrow
// integer type we police, returning the target basic type.
func conversionTarget(pass *Pass, call *ast.CallExpr) (*types.Basic, bool) {
	tv, ok := pass.Info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return nil, false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	if !ok {
		return nil, false
	}
	switch basic.Kind() {
	case types.Int32, types.Uint32, types.Int16:
		return basic, true
	}
	return nil, false
}

func isWideInt(t types.Type) bool {
	basic, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	switch basic.Kind() {
	case types.Int, types.Int64, types.Uint, types.Uint64, types.Uintptr:
		return true
	}
	return false
}

func constFits(v constant.Value, target *types.Basic) bool {
	i, ok := constant.Int64Val(constant.ToInt(v))
	if !ok {
		return false
	}
	switch target.Kind() {
	case types.Int32:
		return i >= -1<<31 && i < 1<<31
	case types.Uint32:
		return i >= 0 && i < 1<<32
	case types.Int16:
		return i >= -1<<15 && i < 1<<15
	}
	return false
}

func maxConstName(target *types.Basic) string {
	switch target.Kind() {
	case types.Uint32:
		return "MaxUint32"
	case types.Int16:
		return "MaxInt16"
	default:
		return "MaxInt32"
	}
}

// funcIsGuarded reports whether fn contains an overflow guard: a reference
// to a math.Max* bound or a call to a Check*-style guard helper.
func funcIsGuarded(pass *Pass, fn *ast.FuncDecl) bool {
	guarded := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if guarded {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectorExpr:
			switch n.Sel.Name {
			case "MaxInt32", "MaxInt16", "MaxUint32", "MaxInt64", "MaxInt":
				if obj := pass.Info.Uses[n.Sel]; obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "math" {
					guarded = true
				}
			}
		case *ast.CallExpr:
			var name string
			switch fun := n.Fun.(type) {
			case *ast.Ident:
				name = fun.Name
			case *ast.SelectorExpr:
				name = fun.Sel.Name
			}
			if name != "" && guardFuncRE.MatchString(name) {
				guarded = true
			}
		}
		return true
	})
	return guarded
}
