package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file builds the whole-module call graph the interprocedural
// analyzers (ctxflow, lockhold, atomicmix) walk.  Nodes are every declared
// function and method plus every function literal in every loaded package
// — test files included.  Edges come from five resolution strategies, in
// decreasing order of precision:
//
//  1. direct calls to package-level functions and concrete methods,
//  2. calls through interface methods, resolved to every concrete method
//     in the module whose receiver implements the interface (a sound
//     over-approximation for reachability),
//  3. calls through func-typed variables, fields, and parameters, resolved
//     to every function value ever bound to that object anywhere in the
//     module (this is what routes Server.getArtifact -> cfg.Builder ->
//     BuildArtifact),
//  4. immediately invoked function literals, and
//  5. a lexical edge from each function to the literals it encloses, so a
//     literal handed to an external API (http.HandlerFunc, sync.Pool.New)
//     still counts as reachable from its parent.
//
// Calls to functions outside the module (stdlib) are kept as qualified
// names so analyzers can classify them (lockhold's blocking-call table)
// without type-checking the standard library bodies.
//
// Cross-package identity: every package is type-checked in its own
// universe, so the *types.Func a caller sees for an imported function is
// a different object from the one in that function's own loaded package.
// All files go through one shared FileSet, though, so a declaration's
// file:line:col is identical in both universes — functions and binding
// targets are therefore keyed by declaration position, which unifies the
// universes without a second resolver.

// Func is one function in the loaded program: a declared function or
// method (Decl != nil) or a function literal (Lit != nil).
type Func struct {
	Obj    *types.Func   // nil for literals
	Decl   *ast.FuncDecl // nil for literals
	Lit    *ast.FuncLit  // nil for declarations
	Pkg    *Package
	Parent *Func // enclosing function, for literals

	name string
}

// Name returns a stable human-readable identifier: "pkg.Fn",
// "pkg.(Recv).Fn", or "pkg.Fn$N" for the N-th literal inside Fn.
func (f *Func) Name() string { return f.name }

// Body returns the function body (nil for bodyless declarations).
func (f *Func) Body() *ast.BlockStmt {
	if f.Decl != nil {
		return f.Decl.Body
	}
	return f.Lit.Body
}

// FuncType returns the AST type (parameters and results).
func (f *Func) FuncType() *ast.FuncType {
	if f.Decl != nil {
		return f.Decl.Type
	}
	return f.Lit.Type
}

// Pos returns the declaration position.
func (f *Func) Pos() token.Pos {
	if f.Decl != nil {
		return f.Decl.Pos()
	}
	return f.Lit.Pos()
}

// Root returns the outermost declared function enclosing f (f itself for
// declarations).
func (f *Func) Root() *Func {
	for f.Parent != nil {
		f = f.Parent
	}
	return f
}

// Call is one call site inside a function.
type Call struct {
	Expr    *ast.CallExpr
	Callees []*Func // module callees this site may invoke (empty if external or unresolved)
	Ext     string  // qualified name for a non-module callee, e.g. "(*sync.WaitGroup).Wait"
}

// CallGraph is the module-wide graph over Funcs.
type CallGraph struct {
	Funcs  []*Func
	ByNode map[ast.Node]*Func // *ast.FuncDecl / *ast.FuncLit -> Func

	calls   map[*Func][]*Call
	callers map[*Func][]*Func
}

// Calls returns the resolved call sites lexically inside f (not inside
// nested literals).
func (g *CallGraph) Calls(f *Func) []*Call { return g.calls[f] }

// Callees returns every module function f may transfer control to: call
// targets plus lexically nested literals.
func (g *CallGraph) Callees(f *Func) []*Func {
	var out []*Func
	seen := make(map[*Func]bool)
	for _, c := range g.calls[f] {
		for _, t := range c.Callees {
			if !seen[t] {
				seen[t] = true
				out = append(out, t)
			}
		}
	}
	for _, other := range g.Funcs {
		if other.Parent == f && !seen[other] {
			seen[other] = true
			out = append(out, other)
		}
	}
	return out
}

// Callers returns the functions with an edge into f (lexical parents of
// literals included).
func (g *CallGraph) Callers(f *Func) []*Func { return g.callers[f] }

// Reachable returns the closure of entries under Callees.
func (g *CallGraph) Reachable(entries []*Func) map[*Func]bool {
	seen := make(map[*Func]bool)
	work := append([]*Func(nil), entries...)
	for len(work) > 0 {
		f := work[len(work)-1]
		work = work[:len(work)-1]
		if seen[f] {
			continue
		}
		seen[f] = true
		work = append(work, g.Callees(f)...)
	}
	return seen
}

// posKey renders an object's declaration position as the cross-universe
// identity key (see the package comment above on why position, not
// object identity).
func posKey(fset *token.FileSet, obj types.Object) string {
	if obj == nil || !obj.Pos().IsValid() {
		return ""
	}
	return fset.Position(obj.Pos()).String()
}

// buildCallGraph constructs the graph over every package in the program.
func buildCallGraph(fset *token.FileSet, pkgs []*Package) *CallGraph {
	g := &CallGraph{
		ByNode:  make(map[ast.Node]*Func),
		calls:   make(map[*Func][]*Call),
		callers: make(map[*Func][]*Func),
	}
	byObj := make(map[string]*Func)

	// Pass 1: collect declared functions, then their nested literals.
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				f := &Func{Obj: obj, Decl: fd, Pkg: pkg, name: declName(pkg, fd)}
				g.Funcs = append(g.Funcs, f)
				g.ByNode[fd] = f
				if k := posKey(fset, obj); k != "" {
					byObj[k] = f
				}
			}
		}
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				g.collectLits(pkg, g.ByNode[fd], fd.Body)
			}
		}
	}

	// Pass 2: record every binding of a function value to a variable,
	// struct field, or parameter, so calls through func-typed objects
	// resolve to the set of functions ever stored there.  Targets are
	// keyed by declaration position, so a binding written in cmd/ipgd to
	// a field declared in internal/serve lands on the same key the
	// serve-side call through that field looks up.
	bindings := make(map[string][]*Func)
	for _, pkg := range pkgs {
		collectFuncBindings(fset, pkg, g, byObj, bindings)
	}

	// Pass 3: resolve call sites.
	res := &callResolver{fset: fset, g: g, byObj: byObj, bindings: bindings, pkgs: pkgs}
	for _, f := range g.Funcs {
		if f.Body() == nil {
			continue
		}
		inspectShallow(f.Body(), func(n ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			if c := res.resolve(f.Pkg, call); c != nil {
				g.calls[f] = append(g.calls[f], c)
			}
		})
	}

	// Reverse edges (lexical literal edges included).
	seenEdge := make(map[[2]*Func]bool)
	addCaller := func(from, to *Func) {
		k := [2]*Func{from, to}
		if !seenEdge[k] {
			seenEdge[k] = true
			g.callers[to] = append(g.callers[to], from)
		}
	}
	for _, f := range g.Funcs {
		for _, c := range g.calls[f] {
			for _, t := range c.Callees {
				addCaller(f, t)
			}
		}
		if f.Parent != nil {
			addCaller(f.Parent, f)
		}
	}
	return g
}

// collectLits registers every function literal in body (recursively) as a
// Func whose Parent is the innermost enclosing function.
func (g *CallGraph) collectLits(pkg *Package, parent *Func, body *ast.BlockStmt) {
	n := 0
	var walk func(node ast.Node) bool
	walk = func(node ast.Node) bool {
		lit, ok := node.(*ast.FuncLit)
		if !ok {
			return true
		}
		n++
		f := &Func{Lit: lit, Pkg: pkg, Parent: parent, name: fmt.Sprintf("%s$%d", parent.name, n)}
		g.Funcs = append(g.Funcs, f)
		g.ByNode[lit] = f
		g.collectLits(pkg, f, lit.Body)
		return false
	}
	ast.Inspect(body, walk)
}

// inspectShallow walks body without descending into nested function
// literals, so each node is attributed to its innermost enclosing Func.
func inspectShallow(body *ast.BlockStmt, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}

func declName(pkg *Package, fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return pkg.Name + "." + fd.Name.Name
	}
	recv := fd.Recv.List[0].Type
	if star, ok := recv.(*ast.StarExpr); ok {
		recv = star.X
	}
	if idx, ok := recv.(*ast.IndexExpr); ok { // generic receiver
		recv = idx.X
	}
	name := "?"
	if id, ok := recv.(*ast.Ident); ok {
		name = id.Name
	}
	return pkg.Name + ".(" + name + ")." + fd.Name.Name
}

// collectFuncBindings scans one package for expressions that store a
// function value into a variable, field, or parameter.
func collectFuncBindings(fset *token.FileSet, pkg *Package, g *CallGraph, byObj map[string]*Func, bindings map[string][]*Func) {
	funcValueOf := func(e ast.Expr) *Func {
		e = ast.Unparen(e)
		switch e := e.(type) {
		case *ast.FuncLit:
			return g.ByNode[e]
		case *ast.Ident:
			if fn, ok := pkg.Info.Uses[e].(*types.Func); ok {
				return byObj[posKey(fset, fn)]
			}
		case *ast.SelectorExpr:
			if fn, ok := pkg.Info.Uses[e.Sel].(*types.Func); ok {
				return byObj[posKey(fset, fn)] // package-qualified func or method value
			}
		}
		return nil
	}
	bind := func(target types.Object, val ast.Expr) {
		k := posKey(fset, target)
		if k == "" {
			return
		}
		if f := funcValueOf(val); f != nil {
			bindings[k] = append(bindings[k], f)
		}
	}
	lhsObj := func(e ast.Expr) types.Object {
		switch e := e.(type) {
		case *ast.Ident:
			if o := pkg.Info.Defs[e]; o != nil {
				return o
			}
			return pkg.Info.Uses[e]
		case *ast.SelectorExpr:
			return pkg.Info.Uses[e.Sel]
		}
		return nil
	}
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) == len(n.Rhs) {
					for i := range n.Lhs {
						bind(lhsObj(n.Lhs[i]), n.Rhs[i])
					}
				}
			case *ast.ValueSpec:
				if len(n.Names) == len(n.Values) {
					for i := range n.Names {
						bind(pkg.Info.Defs[n.Names[i]], n.Values[i])
					}
				}
			case *ast.KeyValueExpr:
				// Struct literal field: the key resolves to the field object.
				if id, ok := n.Key.(*ast.Ident); ok {
					bind(pkg.Info.Uses[id], n.Value)
				}
			case *ast.CallExpr:
				// Function argument: bind to the callee's parameter object
				// when the callee is a module function.
				callee := staticCallee(pkg, n)
				if callee == nil {
					return true
				}
				cf := byObj[posKey(fset, callee)]
				if cf == nil || cf.Decl == nil {
					return true
				}
				params := flattenParams(cf)
				for i, arg := range n.Args {
					if i >= len(params) {
						break
					}
					bind(cf.Pkg.Info.Defs[params[i]], arg)
				}
			}
			return true
		})
	}
}

// flattenParams returns the parameter idents of a declared function in
// positional order.
func flattenParams(f *Func) []*ast.Ident {
	var out []*ast.Ident
	if f.Decl.Type.Params == nil {
		return out
	}
	for _, field := range f.Decl.Type.Params.List {
		out = append(out, field.Names...)
	}
	return out
}

// staticCallee resolves a call to a statically known *types.Func, or nil.
func staticCallee(pkg *Package, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pkg.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pkg.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

type callResolver struct {
	fset     *token.FileSet
	g        *CallGraph
	byObj    map[string]*Func
	bindings map[string][]*Func
	pkgs     []*Package
}

// resolve classifies one call expression.  It returns nil for type
// conversions and builtins.
func (r *callResolver) resolve(pkg *Package, call *ast.CallExpr) *Call {
	fun := ast.Unparen(call.Fun)
	if tv, ok := pkg.Info.Types[fun]; ok && tv.IsType() {
		return nil // conversion
	}
	switch fun := fun.(type) {
	case *ast.FuncLit:
		return &Call{Expr: call, Callees: []*Func{r.g.ByNode[fun]}}
	case *ast.Ident:
		switch obj := pkg.Info.Uses[fun].(type) {
		case *types.Builtin:
			return nil
		case *types.Func:
			return r.funcCall(call, obj)
		case *types.Var:
			return &Call{Expr: call, Callees: r.bindings[posKey(r.fset, obj)]}
		case *types.TypeName:
			return nil
		}
		return &Call{Expr: call}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[fun]; ok {
			fn, ok := sel.Obj().(*types.Func)
			if !ok {
				// Func-typed field accessed through a selector.
				if v, ok := sel.Obj().(*types.Var); ok {
					return &Call{Expr: call, Callees: r.bindings[posKey(r.fset, v)]}
				}
				return &Call{Expr: call}
			}
			if recvIsInterface(sel.Recv()) {
				return &Call{Expr: call, Callees: r.implementations(sel.Recv(), fn), Ext: extName(fn)}
			}
			return r.funcCall(call, fn)
		}
		// Package-qualified function or variable.
		switch obj := pkg.Info.Uses[fun.Sel].(type) {
		case *types.Func:
			return r.funcCall(call, obj)
		case *types.Var:
			return &Call{Expr: call, Callees: r.bindings[posKey(r.fset, obj)]}
		}
		return &Call{Expr: call}
	}
	return &Call{Expr: call}
}

func (r *callResolver) funcCall(call *ast.CallExpr, fn *types.Func) *Call {
	if f := r.byObj[posKey(r.fset, fn)]; f != nil {
		return &Call{Expr: call, Callees: []*Func{f}}
	}
	return &Call{Expr: call, Ext: extName(fn)}
}

func recvIsInterface(t types.Type) bool {
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

// implementations returns every module method named like fn whose receiver
// type implements the interface the call goes through.
func (r *callResolver) implementations(iface types.Type, fn *types.Func) []*Func {
	it, ok := iface.Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	var out []*Func
	for _, cand := range r.g.Funcs {
		if cand.Obj == nil || cand.Obj.Name() != fn.Name() {
			continue
		}
		sig, ok := cand.Obj.Type().(*types.Signature)
		if !ok || sig.Recv() == nil {
			continue
		}
		rt := sig.Recv().Type()
		if types.Implements(rt, it) || types.Implements(types.NewPointer(rt), it) {
			out = append(out, cand)
		}
	}
	return out
}

// extName qualifies a non-module function for the analyzers' classifier
// tables, e.g. "fmt.Fprintf" or "(*sync.WaitGroup).Wait".
func extName(fn *types.Func) string {
	name := fn.FullName()
	// FullName spells vendored stdlib paths in full; keep the tail two
	// segments so tables can match on "sync.WaitGroup" style names.
	return name
}

// EdgeStrings renders the graph as sorted "caller -> callee" lines, for
// golden tests.
func (g *CallGraph) EdgeStrings() []string {
	var out []string
	for _, f := range g.Funcs {
		for _, t := range g.Callees(f) {
			out = append(out, f.Name()+" -> "+t.Name())
		}
	}
	sort.Strings(out)
	// Dedup.
	w := 0
	for i, s := range out {
		if i == 0 || s != out[w-1] {
			out[w] = s
			w++
		}
	}
	return out[:w]
}

// funcDisplay returns a short label for diagnostics: "Name" or
// "(Recv).Name" without the package prefix.
func funcDisplay(f *Func) string {
	name := f.Name()
	if i := strings.IndexByte(name, '.'); i >= 0 {
		return name[i+1:]
	}
	return name
}
