// Package cluster is the horizontal-scaling layer for the topology
// daemon: a consistent-hash ring assigns ownership of canonical family
// keys (serve.Params.Key) across N statically configured ipgd replicas,
// non-owners peer-fill from the key's owner over stdlib-only HTTP with
// hedged reads, and each peer is guarded by its own circuit breaker
// (internal/breaker) so a dead or slow replica is cut out of the ring
// and its keys rehash onto the survivors.
package cluster

import (
	"fmt"
	"sort"
)

// ringPoint is one virtual node on the hash circle.
type ringPoint struct {
	hash uint64
	peer int // index into Ring.peers
}

// Ring is an immutable consistent-hash ring with virtual nodes.  Every
// replica builds its ring from the same peer list and virtual-node
// count, so key ownership is a pure deterministic function shared by the
// whole cluster — no coordination protocol needed.  Liveness is layered
// on top per lookup: callers pass an alive predicate and the walk skips
// dead peers, which is exactly the "rehash onto the ring successor"
// failover the paper's k-connectivity argument calls for.
type Ring struct {
	peers  []string // sorted, unique
	vnodes int
	points []ringPoint // sorted by hash
}

// NewRing builds the ring.  The peer list is deduplicated and sorted, so
// rings built from differently ordered configs are identical.
func NewRing(peers []string, vnodes int) (*Ring, error) {
	if len(peers) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one peer")
	}
	if vnodes < 1 {
		return nil, fmt.Errorf("cluster: vnodes = %d, need >= 1", vnodes)
	}
	sorted := append([]string(nil), peers...)
	sort.Strings(sorted)
	for i := 1; i < len(sorted); i++ {
		if sorted[i] == sorted[i-1] {
			return nil, fmt.Errorf("cluster: duplicate peer %q", sorted[i])
		}
	}
	r := &Ring{
		peers:  sorted,
		vnodes: vnodes,
		points: make([]ringPoint, 0, len(sorted)*vnodes),
	}
	for pi, p := range sorted {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash: hash64(fmt.Sprintf("%s#%d", p, v)),
				peer: pi,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (vanishingly rare with 64-bit FNV) break by peer
		// index so the order stays deterministic across processes.
		return r.points[i].peer < r.points[j].peer
	})
	return r, nil
}

// hash64 is FNV-1a, written out so the ring's placement function is
// pinned by this file (and its golden test) rather than by a library
// whose constants could in principle change under us.  Determinism
// across processes and releases is a correctness property here: two
// replicas that disagree on ownership both build, which the one-build
// invariant forbids.
func hash64(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// Peers returns the sorted peer list (shared slice; do not modify).
func (r *Ring) Peers() []string { return r.peers }

// VNodes returns the virtual-node count per peer.
func (r *Ring) VNodes() int { return r.vnodes }

// Owner returns the peer owning key among those the alive predicate
// admits: the first distinct alive peer at or clockwise of the key's
// point.  A nil alive admits everyone.  Owner returns "" only when alive
// rejects every peer.
func (r *Ring) Owner(key string, alive func(string) bool) string {
	succ := r.Successors(key, 1, alive)
	if len(succ) == 0 {
		return ""
	}
	return succ[0]
}

// Successors returns up to max distinct peers in ring order starting at
// key's point, skipping peers the alive predicate rejects.  The first
// entry is the key's owner; the second is the natural hedge/failover
// target.  A nil alive admits everyone; max <= 0 means all peers.
func (r *Ring) Successors(key string, max int, alive func(string) bool) []string {
	if max <= 0 || max > len(r.peers) {
		max = len(r.peers)
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, max)
	seen := make(map[int]bool, max)
	for i := 0; i < len(r.points) && len(out) < max && len(seen) < len(r.peers); i++ {
		pt := r.points[(start+i)%len(r.points)]
		if seen[pt.peer] {
			continue
		}
		seen[pt.peer] = true
		p := r.peers[pt.peer]
		if alive == nil || alive(p) {
			out = append(out, p)
		}
	}
	return out
}
