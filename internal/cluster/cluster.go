package cluster

import (
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ipg/internal/breaker"
)

// Header names of the peer-fill protocol.  FillHeader marks an internal
// peer-fill request, so the receiving replica serves it locally (never
// forwards again — no loops) or declines with 421 when it neither owns
// the key nor has it cached.  ReplicaHeader names the replica that
// produced a response body; ViaHeader names the replica that proxied it.
const (
	FillHeader    = "X-Ipgd-Fill"
	ReplicaHeader = "X-Ipgd-Replica"
	ViaHeader     = "X-Ipgd-Via"
)

// Config describes one replica's view of the cluster.
type Config struct {
	// Self is this replica's own base URL, exactly as it appears in
	// Peers (e.g. "http://10.0.0.3:8080").
	Self string
	// Peers is the full static membership, including Self.
	Peers []string
	// VNodes is the virtual-node count per peer; 0 means 64.
	VNodes int
	// HedgeDelay is how long a peer-fill waits on the owner before racing
	// the next ring successor; 0 means 30ms, negative disables hedging.
	HedgeDelay time.Duration
	// FetchTimeout bounds one whole peer-fill fetch (both legs); 0 means
	// 30s.  It also caps how long a frozen peer can stall a fill before
	// the caller falls back to building locally.
	FetchTimeout time.Duration
	// BreakerThreshold is the consecutive fetch failures that open a
	// peer's circuit, cutting it out of the ring until a half-open probe
	// succeeds; 0 means 3, negative disables per-peer breakers.
	BreakerThreshold int
	// BreakerCooldown is the open-circuit window before a probe; 0 means 5s.
	BreakerCooldown time.Duration
	// MaxFillBytes caps a peer-fill response body; 0 means 64 MiB.
	MaxFillBytes int64
	// Transport overrides the HTTP transport between peers (tests); nil
	// means a dedicated http.Transport with per-host keep-alive pools.
	Transport http.RoundTripper
}

func (c Config) withDefaults() Config {
	if c.VNodes == 0 {
		c.VNodes = 64
	}
	if c.HedgeDelay == 0 {
		c.HedgeDelay = 30 * time.Millisecond
	}
	if c.FetchTimeout <= 0 {
		c.FetchTimeout = 30 * time.Second
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 5 * time.Second
	}
	if c.MaxFillBytes <= 0 {
		c.MaxFillBytes = 64 << 20
	}
	return c
}

// peerCounters tracks outgoing fill traffic toward one peer.
type peerCounters struct {
	fetches atomic.Int64
	errors  atomic.Int64
}

// Cluster is one replica's cluster runtime: the shared ring, the HTTP
// client used for peer fills, one circuit breaker per peer, and the
// fill/hedge counters exposed on /v1/cluster and /metrics.
type Cluster struct {
	cfg      Config
	ring     *Ring
	client   *http.Client
	breakers *breaker.Set // keyed by peer URL; nil when disabled
	perPeer  map[string]*peerCounters

	fills      atomic.Int64 // outgoing peer-fill fetches (post-singleflight)
	fillErrors atomic.Int64 // fetches that exhausted every leg
	hedges     atomic.Int64 // hedge legs launched
	hedgeWins  atomic.Int64 // fills answered by the hedge leg
	declines   atomic.Int64 // 421 not-owner responses received

	mu      sync.Mutex
	flights map[string]*fillFlight // singleflight per request URI
}

// ParsePeers splits and validates a comma-separated peer list: every
// entry must be an absolute http(s) URL with a host and nothing else (no
// path, query, fragment, or user info), and entries must be unique.  It
// is the shared validator behind the ipgd -peers flag.
func ParsePeers(s string) ([]string, error) {
	var peers []string
	for _, raw := range strings.Split(s, ",") {
		p := strings.TrimSpace(raw)
		if p == "" {
			return nil, fmt.Errorf("cluster: empty peer entry in %q", s)
		}
		u, err := url.Parse(p)
		if err != nil {
			return nil, fmt.Errorf("cluster: peer %q: %v", p, err)
		}
		if u.Scheme != "http" && u.Scheme != "https" {
			return nil, fmt.Errorf("cluster: peer %q: scheme must be http or https", p)
		}
		if u.Host == "" {
			return nil, fmt.Errorf("cluster: peer %q has no host", p)
		}
		if u.Path != "" || u.RawQuery != "" || u.Fragment != "" || u.User != nil {
			return nil, fmt.Errorf("cluster: peer %q must be a bare base URL (scheme://host:port)", p)
		}
		peers = append(peers, u.Scheme+"://"+u.Host)
	}
	sorted := append([]string(nil), peers...)
	sort.Strings(sorted)
	for i := 1; i < len(sorted); i++ {
		if sorted[i] == sorted[i-1] {
			return nil, fmt.Errorf("cluster: duplicate peer %q", sorted[i])
		}
	}
	return peers, nil
}

// New builds the replica's cluster runtime.  Self must appear in Peers.
func New(cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	ring, err := NewRing(cfg.Peers, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	found := false
	for _, p := range ring.Peers() {
		if p == cfg.Self {
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("cluster: self %q is not in the peer list %v", cfg.Self, ring.Peers())
	}
	transport := cfg.Transport
	if transport == nil {
		transport = &http.Transport{
			MaxIdleConnsPerHost: 16,
			IdleConnTimeout:     90 * time.Second,
		}
	}
	c := &Cluster{
		cfg:      cfg,
		ring:     ring,
		client:   &http.Client{Transport: transport},
		breakers: breaker.NewSet(cfg.BreakerThreshold, cfg.BreakerCooldown),
		perPeer:  make(map[string]*peerCounters, len(ring.Peers())),
		flights:  make(map[string]*fillFlight),
	}
	for _, p := range ring.Peers() {
		c.perPeer[p] = &peerCounters{}
	}
	return c, nil
}

// Self returns this replica's own base URL.
func (c *Cluster) Self() string { return c.cfg.Self }

// Size returns the configured cluster size.
func (c *Cluster) Size() int { return len(c.ring.Peers()) }

// alive admits self unconditionally and every peer whose circuit is not
// open.  Half-open peers stay in the ring: the next fill toward them is
// the probe that decides whether they rejoin.
func (c *Cluster) alive(peer string) bool {
	return peer == c.cfg.Self || c.breakers.State(peer, time.Now()) != breaker.Open
}

// Owner returns the peer currently owning key, i.e. the first alive ring
// successor.  Ownership rehashes automatically when a peer's circuit
// opens and heals back when it closes.
func (c *Cluster) Owner(key string) string { return c.ring.Owner(key, c.alive) }

// Owns reports whether this replica currently owns key.
func (c *Cluster) Owns(key string) bool { return c.Owner(key) == c.cfg.Self }

// Preference returns the current failover order for key: all alive peers
// in ring-successor order (owner first).
func (c *Cluster) Preference(key string) []string {
	return c.ring.Successors(key, 0, c.alive)
}

// route picks the fill targets for key: the owning peer and the hedge
// fallback (the next alive successor that is neither the owner nor
// self).  self reports that this replica is the owner, in which case the
// caller builds locally and no fetch happens.
func (c *Cluster) route(key string) (owner, fallback string, self bool) {
	pref := c.Preference(key)
	if len(pref) == 0 || pref[0] == c.cfg.Self {
		return "", "", true
	}
	owner = pref[0]
	for _, p := range pref[1:] {
		if p != c.cfg.Self {
			fallback = p
			break
		}
	}
	return owner, fallback, false
}

// PeerStatus is one peer's row in the /v1/cluster document.
type PeerStatus struct {
	Peer    string `json:"peer"`
	Self    bool   `json:"self,omitempty"`
	Breaker string `json:"breaker"` // closed | open | half-open
	Fetches int64  `json:"fetches"` // outgoing fills sent to this peer
	Errors  int64  `json:"errors"`  // outgoing fills that failed
}

// Status is the cluster-side half of the /v1/cluster document (the
// serving layer adds its own request counters on top).
type Status struct {
	Self       string       `json:"self"`
	VNodes     int          `json:"vnodes"`
	Peers      []PeerStatus `json:"peers"`
	Fills      int64        `json:"peer_fills"`
	FillErrors int64        `json:"peer_fill_errors"`
	Hedges     int64        `json:"hedges"`
	HedgeWins  int64        `json:"hedge_wins"`
	Declines   int64        `json:"declines"`
}

// Status snapshots the ring membership, per-peer breaker states, and
// fill/hedge counters.
func (c *Cluster) Status() Status {
	now := time.Now()
	st := Status{
		Self:       c.cfg.Self,
		VNodes:     c.ring.VNodes(),
		Fills:      c.fills.Load(),
		FillErrors: c.fillErrors.Load(),
		Hedges:     c.hedges.Load(),
		HedgeWins:  c.hedgeWins.Load(),
		Declines:   c.declines.Load(),
	}
	for _, p := range c.ring.Peers() {
		ps := PeerStatus{Peer: p, Self: p == c.cfg.Self, Breaker: breaker.Closed.String()}
		if !ps.Self {
			ps.Breaker = c.breakers.State(p, now).String()
		}
		if pc := c.perPeer[p]; pc != nil {
			ps.Fetches = pc.fetches.Load()
			ps.Errors = pc.errors.Load()
		}
		st.Peers = append(st.Peers, ps)
	}
	return st
}

// OpenPeers counts peers whose circuit is currently open (cut out of the
// ring), for the Prometheus gauge.
func (c *Cluster) OpenPeers() int64 {
	now := time.Now()
	var n int64
	for _, p := range c.ring.Peers() {
		if p != c.cfg.Self && c.breakers.State(p, now) == breaker.Open {
			n++
		}
	}
	return n
}
