package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"ipg/internal/breaker"
)

// ErrSelfOwner is returned by Fill when the ring (as currently alive)
// says this replica owns the key, so the caller should build locally
// instead of fetching.
var ErrSelfOwner = errors.New("cluster: this replica owns the key")

// errDeclined is the terminal error when every fill leg answered 421
// (not owner, not cached) — a transient ownership disagreement; the
// caller falls back to building locally.
var errDeclined = errors.New("cluster: every peer declined the fill (not owner, not cached)")

// FillResult is one peer's response to a fill, replayed verbatim to the
// client by the serving layer.  Status can be any HTTP status the peer
// produced: a 503 from a saturated owner passes through — with its
// Retry-After — rather than masquerading as a local failure.
type FillResult struct {
	Status      int
	Body        []byte
	ContentType string
	RetryAfter  string
	ServedBy    string // replica that produced the body (ReplicaHeader, or the peer URL)
	Hedged      bool   // answered by the hedge leg, not the owner
}

// fillFlight is one in-progress fill fetch shared by every concurrent
// caller with the same request URI (the cross-node half of the
// groupcache-style singleflight; the in-process half is the build
// singleflight inside internal/cache).
type fillFlight struct {
	done chan struct{}
	res  *FillResult
	err  error
}

// Fill fetches the response for uri (path + query, e.g.
// "/v1/metrics?net=hsn&l=3") from the key's owner, hedging to the next
// alive ring successor after HedgeDelay.  Concurrent Fills for the same
// uri collapse into one fetch.  The fetch itself is detached from any
// single caller's cancellation (bounded by FetchTimeout) so one
// impatient client cannot kill a fill other clients are waiting on; a
// caller whose ctx expires returns promptly with its own ctx error.
//
// Errors: ErrSelfOwner means "you own it, build locally"; any other
// error means every leg failed and the caller should fall back to
// building locally rather than surfacing a 5xx.
func (c *Cluster) Fill(ctx context.Context, key, uri string) (*FillResult, error) {
	owner, fallback, self := c.route(key)
	if self {
		return nil, ErrSelfOwner
	}

	c.mu.Lock()
	f := c.flights[uri]
	if f == nil {
		f = &fillFlight{done: make(chan struct{})}
		c.flights[uri] = f
		c.fills.Add(1)
		// Detach from this caller: the fetch budget is FetchTimeout, not
		// whichever waiter happens to have the shortest deadline.
		fctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), c.cfg.FetchTimeout)
		go func() {
			defer cancel()
			res, err := c.fetchHedged(fctx, owner, fallback, uri)
			if err != nil {
				c.fillErrors.Add(1)
			}
			c.mu.Lock()
			delete(c.flights, uri)
			c.mu.Unlock()
			f.res, f.err = res, err
			close(f.done)
		}()
	}
	c.mu.Unlock()

	select {
	case <-f.done:
		return f.res, f.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// legOut is one fetch leg's outcome.
type legOut struct {
	res    *FillResult
	err    error
	hedged bool
}

// fetchHedged runs the two-leg hedged fetch: the owner immediately, the
// fallback either after HedgeDelay or as soon as the owner leg fails.
// The first usable response (any HTTP status except a 421 decline) wins;
// a declined or failed pair surfaces the first error.
func (c *Cluster) fetchHedged(ctx context.Context, owner, fallback, uri string) (*FillResult, error) {
	resc := make(chan legOut, 2) // buffered: an abandoned leg must not block
	go c.fetchLeg(ctx, owner, uri, false, resc)
	outstanding := 1
	hedgeLaunched := fallback == ""
	var timerC <-chan time.Time
	if !hedgeLaunched && c.cfg.HedgeDelay >= 0 {
		t := time.NewTimer(c.cfg.HedgeDelay)
		defer t.Stop()
		timerC = t.C
	}
	launchHedge := func() {
		hedgeLaunched = true
		timerC = nil
		outstanding++
		c.hedges.Add(1)
		//lint:ignore goroutineleak joined by the enclosing select loop, which receives from resc until outstanding drains; resc is buffered (cap 2) so a leg whose result is abandoned on early return can never block
		go c.fetchLeg(ctx, fallback, uri, true, resc)
	}
	var firstErr error
	for {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-timerC:
			launchHedge()
		case out := <-resc:
			outstanding--
			if out.err == nil && out.res.Status != http.StatusMisdirectedRequest {
				if out.hedged {
					c.hedgeWins.Add(1)
				}
				return out.res, nil
			}
			if out.err == nil {
				c.declines.Add(1)
				out.err = errDeclined
			}
			if firstErr == nil {
				firstErr = out.err
			}
			if !hedgeLaunched {
				// The owner leg failed before the hedge timer: race the
				// fallback immediately instead of waiting out the delay.
				launchHedge()
			} else if outstanding == 0 {
				return nil, firstErr
			}
		}
	}
}

// fetchLeg runs one GET against one peer and reports the outcome to its
// breaker: transport errors and timeouts are genuine failures (a dead or
// frozen replica), while any HTTP response — including 5xx — proves the
// peer alive and closes its circuit.
func (c *Cluster) fetchLeg(ctx context.Context, peer, uri string, hedged bool, out chan<- legOut) {
	res, err := c.doFetch(ctx, peer, uri, hedged)
	out <- legOut{res: res, err: err, hedged: hedged}
}

func (c *Cluster) doFetch(ctx context.Context, peer, uri string, hedged bool) (*FillResult, error) {
	if err := c.breakers.Allow(peer, time.Now()); err != nil {
		return nil, fmt.Errorf("cluster: peer %s: %w", peer, err)
	}
	pc := c.perPeer[peer]
	pc.fetches.Add(1)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+uri, nil)
	if err != nil {
		c.breakers.Report(peer, breaker.Neutral, time.Now())
		return nil, err
	}
	req.Header.Set(FillHeader, "1")
	resp, err := c.client.Do(req)
	if err != nil {
		pc.errors.Add(1)
		c.breakers.Report(peer, breaker.Fail, time.Now())
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, c.cfg.MaxFillBytes+1))
	if err != nil {
		pc.errors.Add(1)
		c.breakers.Report(peer, breaker.Fail, time.Now())
		return nil, err
	}
	if int64(len(body)) > c.cfg.MaxFillBytes {
		pc.errors.Add(1)
		c.breakers.Report(peer, breaker.Neutral, time.Now())
		return nil, fmt.Errorf("cluster: fill body from %s exceeds %d bytes", peer, c.cfg.MaxFillBytes)
	}
	c.breakers.Report(peer, breaker.OK, time.Now())
	servedBy := resp.Header.Get(ReplicaHeader)
	if servedBy == "" {
		servedBy = peer
	}
	return &FillResult{
		Status:      resp.StatusCode,
		Body:        body,
		ContentType: resp.Header.Get("Content-Type"),
		RetryAfter:  resp.Header.Get("Retry-After"),
		ServedBy:    servedBy,
		Hedged:      hedged,
	}, nil
}
