package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestParsePeers checks the shared -peers validator.
func TestParsePeers(t *testing.T) {
	good, err := ParsePeers(" http://a:8080 ,https://b.example.com:9090,http://10.0.0.1:80")
	if err != nil {
		t.Fatalf("valid peer list rejected: %v", err)
	}
	want := []string{"http://a:8080", "https://b.example.com:9090", "http://10.0.0.1:80"}
	if len(good) != len(want) {
		t.Fatalf("ParsePeers = %v, want %v", good, want)
	}
	for i := range want {
		if good[i] != want[i] {
			t.Errorf("peer[%d] = %q, want %q", i, good[i], want[i])
		}
	}

	bad := []string{
		"",
		"http://a:8080,",
		"a:8080",
		"ftp://a:8080",
		"http://",
		"http://a:8080/path",
		"http://a:8080?q=1",
		"http://a:8080#frag",
		"http://user@a:8080",
		"http://a:8080,http://a:8080",
	}
	for _, s := range bad {
		if _, err := ParsePeers(s); err == nil {
			t.Errorf("ParsePeers(%q) accepted, want error", s)
		}
	}
}

// TestNewRequiresSelfInPeers checks construction validation.
func TestNewRequiresSelfInPeers(t *testing.T) {
	_, err := New(Config{Self: "http://x:1", Peers: []string{"http://a:1", "http://b:1"}})
	if err == nil {
		t.Fatal("self outside peer list accepted")
	}
	c, err := New(Config{Self: "http://a:1", Peers: []string{"http://a:1", "http://b:1"}})
	if err != nil {
		t.Fatal(err)
	}
	if c.Self() != "http://a:1" || c.Size() != 2 {
		t.Fatalf("Self=%s Size=%d, want http://a:1, 2", c.Self(), c.Size())
	}
}

// keyOwnedBy scans synthetic keys until it finds one the target peer
// owns, so tests can steer fills toward a specific replica.
func keyOwnedBy(t *testing.T, c *Cluster, target string) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		k := fmt.Sprintf("probe-key-%d", i)
		if c.Owner(k) == target {
			return k
		}
	}
	t.Fatalf("no key owned by %s in 10000 probes", target)
	return ""
}

// newTestCluster builds a 3-replica cluster whose two remote peers are
// real httptest servers; self is a URL nothing listens on (self never
// receives fills — it is the caller).
func newTestCluster(t *testing.T, cfg Config, ownerHandler, fallbackHandler http.Handler) (c *Cluster, owner, fallback string) {
	t.Helper()
	s1 := httptest.NewServer(ownerHandler)
	s2 := httptest.NewServer(fallbackHandler)
	t.Cleanup(s1.Close)
	t.Cleanup(s2.Close)
	cfg.Self = "http://self.invalid:1"
	cfg.Peers = []string{cfg.Self, s1.URL, s2.URL}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c, s1.URL, s2.URL
}

// TestFillSelfOwner checks that Fill refuses to fetch keys this replica
// owns.
func TestFillSelfOwner(t *testing.T) {
	c, _, _ := newTestCluster(t, Config{}, http.NotFoundHandler(), http.NotFoundHandler())
	key := keyOwnedBy(t, c, c.Self())
	if _, err := c.Fill(context.Background(), key, "/v1/build"); !errors.Is(err, ErrSelfOwner) {
		t.Fatalf("Fill(own key) = %v, want ErrSelfOwner", err)
	}
}

// TestFillFromOwner checks the happy path: the owner answers, the fill
// carries its body, headers, and replica identity, and the request is
// marked with the fill header so the peer will not forward it again.
func TestFillFromOwner(t *testing.T) {
	var gotFillHeader atomic.Bool
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotFillHeader.Store(r.Header.Get(FillHeader) != "")
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set(ReplicaHeader, "http://owner.example:1")
		fmt.Fprint(w, `{"ok":true}`)
	})
	c, ownerURL, _ := newTestCluster(t, Config{HedgeDelay: -1}, h, h)
	key := keyOwnedBy(t, c, ownerURL)

	res, err := c.Fill(context.Background(), key, "/v1/metrics?net=hsn")
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != http.StatusOK || string(res.Body) != `{"ok":true}` {
		t.Fatalf("res = %d %q", res.Status, res.Body)
	}
	if res.ContentType != "application/json" {
		t.Errorf("ContentType = %q", res.ContentType)
	}
	if res.ServedBy != "http://owner.example:1" {
		t.Errorf("ServedBy = %q, want the replica header value", res.ServedBy)
	}
	if res.Hedged {
		t.Error("owner-leg response marked Hedged")
	}
	if !gotFillHeader.Load() {
		t.Error("fill request did not carry the fill header")
	}
}

// TestFillRetryAfterPreserved checks that a 503 from a saturated owner
// passes through the fill verbatim — status, body, and Retry-After — so
// backpressure reaches the end client instead of being eaten.
func TestFillRetryAfterPreserved(t *testing.T) {
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "7")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprint(w, "saturated")
	})
	c, ownerURL, _ := newTestCluster(t, Config{HedgeDelay: -1}, h, h)
	key := keyOwnedBy(t, c, ownerURL)

	res, err := c.Fill(context.Background(), key, "/v1/build?net=hsn")
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != http.StatusServiceUnavailable {
		t.Fatalf("Status = %d, want 503", res.Status)
	}
	if res.RetryAfter != "7" {
		t.Fatalf("RetryAfter = %q, want \"7\"", res.RetryAfter)
	}
	if string(res.Body) != "saturated" {
		t.Fatalf("Body = %q", res.Body)
	}
}

// TestHedgeWinsAgainstSlowOwner checks the hedged read: when the owner
// stalls past HedgeDelay, the fallback leg answers and wins.
func TestHedgeWinsAgainstSlowOwner(t *testing.T) {
	release := make(chan struct{})
	slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
		fmt.Fprint(w, "slow-owner")
	})
	fast := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "fast-fallback")
	})
	c, ownerURL, _ := newTestCluster(t, Config{HedgeDelay: 5 * time.Millisecond}, slow, fast)
	defer close(release)
	key := keyOwnedBy(t, c, ownerURL)

	res, err := c.Fill(context.Background(), key, "/v1/metrics?net=hsn")
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Body) != "fast-fallback" || !res.Hedged {
		t.Fatalf("res = %q (hedged=%v), want the hedge leg's body", res.Body, res.Hedged)
	}
	if c.hedges.Load() != 1 || c.hedgeWins.Load() != 1 {
		t.Errorf("hedges=%d hedgeWins=%d, want 1/1", c.hedges.Load(), c.hedgeWins.Load())
	}
}

// TestImmediateHedgeOnOwnerFailure checks that an owner that fails fast
// (connection refused) triggers the hedge immediately instead of waiting
// out a long HedgeDelay.
func TestImmediateHedgeOnOwnerFailure(t *testing.T) {
	fast := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "fallback-body")
	})
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close() // connection refused from here on
	fb := httptest.NewServer(fast)
	t.Cleanup(fb.Close)

	c, err := New(Config{
		Self:       "http://self.invalid:1",
		Peers:      []string{"http://self.invalid:1", deadURL, fb.URL},
		HedgeDelay: time.Hour, // only an immediate hedge can pass this test
	})
	if err != nil {
		t.Fatal(err)
	}
	key := keyOwnedBy(t, c, deadURL)

	start := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	res, err := c.Fill(ctx, key, "/v1/metrics?net=hsn")
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Body) != "fallback-body" {
		t.Fatalf("Body = %q", res.Body)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("fill took %v: hedge clearly waited for the timer", elapsed)
	}
}

// TestAllLegsDecline checks that a cluster-wide 421 (nobody owns or has
// the key — a transient ownership disagreement) surfaces as an error so
// the caller falls back to building locally, and counts declines.
func TestAllLegsDecline(t *testing.T) {
	decline := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusMisdirectedRequest)
	})
	c, ownerURL, _ := newTestCluster(t, Config{HedgeDelay: time.Millisecond}, decline, decline)
	key := keyOwnedBy(t, c, ownerURL)

	_, err := c.Fill(context.Background(), key, "/v1/build?net=hsn")
	if !errors.Is(err, errDeclined) {
		t.Fatalf("Fill = %v, want errDeclined", err)
	}
	if c.declines.Load() == 0 {
		t.Error("declines counter not incremented")
	}
	if c.fillErrors.Load() != 1 {
		t.Errorf("fillErrors = %d, want 1", c.fillErrors.Load())
	}
}

// TestBreakerCutsDeadPeer checks the self-healing loop: repeated fetch
// failures open the dead peer's circuit, OpenPeers reports it, and
// ownership of its keys rehashes onto the survivors.
func TestBreakerCutsDeadPeer(t *testing.T) {
	alive := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "ok")
	})
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()
	ok := httptest.NewServer(alive)
	t.Cleanup(ok.Close)

	self := "http://self.invalid:1"
	c, err := New(Config{
		Self:             self,
		Peers:            []string{self, deadURL, ok.URL},
		HedgeDelay:       -1, // timer hedge off; failure-triggered failover still applies
		BreakerThreshold: 2,
		BreakerCooldown:  time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	key := keyOwnedBy(t, c, deadURL)

	// Each fill fails over to the live fallback (availability is never
	// sacrificed) while the dead owner's breaker accumulates failures.
	// Distinct URIs so the singleflight does not collapse the two fills.
	for i := 0; i < 2; i++ {
		res, err := c.Fill(context.Background(), key, fmt.Sprintf("/x?i=%d", i))
		if err != nil {
			t.Fatalf("fill #%d: %v", i, err)
		}
		if string(res.Body) != "ok" {
			t.Fatalf("fill #%d body = %q, want the fallback's", i, res.Body)
		}
	}
	if got := c.OpenPeers(); got != 1 {
		t.Fatalf("OpenPeers = %d, want 1", got)
	}
	if owner := c.Owner(key); owner == deadURL {
		t.Fatalf("key still owned by dead peer %s after its circuit opened", deadURL)
	}
	st := c.Status()
	var foundOpen bool
	for _, ps := range st.Peers {
		if ps.Peer == deadURL && ps.Breaker == "open" {
			foundOpen = true
		}
	}
	if !foundOpen {
		t.Fatalf("Status does not show %s open: %+v", deadURL, st.Peers)
	}
}

// TestFillSingleflight checks the cross-node singleflight: concurrent
// fills for the same URI collapse into one backend fetch.
func TestFillSingleflight(t *testing.T) {
	var hits atomic.Int64
	release := make(chan struct{})
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		<-release
		fmt.Fprint(w, "shared-body")
	})
	c, ownerURL, _ := newTestCluster(t, Config{HedgeDelay: -1}, h, h)
	key := keyOwnedBy(t, c, ownerURL)

	const callers = 16
	var wg sync.WaitGroup
	errs := make([]error, callers)
	bodies := make([]string, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := c.Fill(context.Background(), key, "/v1/metrics?net=hsn&l=3")
			errs[i] = err
			if err == nil {
				bodies[i] = string(res.Body)
			}
		}(i)
	}
	// Give every caller time to join the flight before releasing the
	// backend; joining is what we are testing, so a short settle is fine
	// (late joiners would only make hits > 1, never a false pass).
	time.Sleep(50 * time.Millisecond)
	close(release)
	wg.Wait()

	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if bodies[i] != "shared-body" {
			t.Fatalf("caller %d body = %q", i, bodies[i])
		}
	}
	if got := hits.Load(); got != 1 {
		t.Fatalf("backend hit %d times, want 1 (singleflight)", got)
	}
	if got := c.fills.Load(); got != 1 {
		t.Fatalf("fills counter = %d, want 1", got)
	}
}

// TestFillCallerCancellation checks that a caller whose context expires
// leaves promptly while the shared fetch keeps its own budget.
func TestFillCallerCancellation(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
	})
	c, ownerURL, _ := newTestCluster(t, Config{HedgeDelay: -1}, h, h)
	key := keyOwnedBy(t, c, ownerURL)

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := c.Fill(ctx, key, "/v1/metrics?net=hsn")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Fill = %v, want the caller's own deadline error", err)
	}
}
