package cluster

import (
	"fmt"
	"math/rand"
	"testing"
)

func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("hsn|l=%d|nucleus=q%d", 2+i%18, 2+i%7)
	}
	return keys
}

func testPeers(n int) []string {
	peers := make([]string, n)
	for i := range peers {
		peers[i] = fmt.Sprintf("http://10.0.0.%d:8080", i+1)
	}
	return peers
}

// TestRingBalance checks that virtual nodes spread ownership evenly: with
// 128 vnodes per peer, no peer's share of a large key population strays
// beyond 2x/0.5x of the fair share.
func TestRingBalance(t *testing.T) {
	peers := testPeers(5)
	r, err := NewRing(peers, 128)
	if err != nil {
		t.Fatal(err)
	}
	const n = 10000
	counts := make(map[string]int, len(peers))
	for i := 0; i < n; i++ {
		counts[r.Owner(fmt.Sprintf("key-%d", i), nil)]++
	}
	fair := float64(n) / float64(len(peers))
	for _, p := range peers {
		share := float64(counts[p])
		if share < fair/2 || share > fair*2 {
			t.Errorf("peer %s owns %d of %d keys (fair share %.0f): imbalance beyond [0.5x, 2x]", p, counts[p], n, fair)
		}
	}
}

// TestRingRemapMinimality checks the consistent-hashing contract: when a
// peer dies, only the keys it owned move, and they land on surviving
// peers; every other key keeps its owner.
func TestRingRemapMinimality(t *testing.T) {
	peers := testPeers(5)
	r, err := NewRing(peers, 64)
	if err != nil {
		t.Fatal(err)
	}
	dead := peers[2]
	alive := func(p string) bool { return p != dead }

	keys := testKeys(2000)
	moved := 0
	for _, k := range keys {
		before := r.Owner(k, nil)
		after := r.Owner(k, alive)
		if after == dead {
			t.Fatalf("key %q assigned to dead peer %s", k, dead)
		}
		if before == dead {
			moved++
			continue
		}
		if before != after {
			t.Errorf("key %q moved %s -> %s though its owner %s survived", k, before, after, before)
		}
	}
	if moved == 0 {
		t.Fatal("test vacuous: dead peer owned no keys")
	}
}

// TestRingDeterminism checks that ownership is a pure function of the
// peer set: rings built from shuffled peer orders agree on every key.
func TestRingDeterminism(t *testing.T) {
	peers := testPeers(7)
	r1, err := NewRing(peers, 64)
	if err != nil {
		t.Fatal(err)
	}
	shuffled := append([]string(nil), peers...)
	rng := rand.New(rand.NewSource(42))
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	r2, err := NewRing(shuffled, 64)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range testKeys(500) {
		if o1, o2 := r1.Owner(k, nil), r2.Owner(k, nil); o1 != o2 {
			t.Fatalf("key %q: owner %s from sorted config, %s from shuffled config", k, o1, o2)
		}
	}
}

// TestRingGoldenOwners pins the placement function across processes and
// releases: the hand-written FNV-1a and the vnode labeling scheme must
// never drift, or replicas built from different binaries would disagree
// on ownership and double-build.  If this test fails, the hash changed —
// that is a breaking cluster protocol change, not a test to update.
func TestRingGoldenOwners(t *testing.T) {
	r, err := NewRing([]string{
		"http://a:8080", "http://b:8080", "http://c:8080",
	}, 64)
	if err != nil {
		t.Fatal(err)
	}
	golden := map[string]string{
		"hsn|l=2|nucleus=q2":         "http://c:8080",
		"hsn|l=3|nucleus=q2":         "http://a:8080",
		"ring-cn|l=3|nucleus=q2":     "http://b:8080",
		"complete-cn|l=3|nucleus=q2": "http://a:8080",
		"sfn|l=3|nucleus=q2":         "http://c:8080",
		"hypercube|dim=6|logm=2":     "http://a:8080",
		"torus|k=8|side=2":           "http://a:8080",
		"ccc|dim=4":                  "http://a:8080",
	}
	for k, want := range golden {
		if got := r.Owner(k, nil); got != want {
			t.Errorf("Owner(%q) = %s, want %s", k, got, want)
		}
	}
}

// TestHash64GoldenVectors pins the hand-written FNV-1a against the
// published test vectors for the 64-bit FNV-1a function.
func TestHash64GoldenVectors(t *testing.T) {
	vectors := map[string]uint64{
		"":    0xcbf29ce484222325,
		"a":   0xaf63dc4c8601ec8c,
		"foo": 0xdcb27518fed9d577,
	}
	for s, want := range vectors {
		if got := hash64(s); got != want {
			t.Errorf("hash64(%q) = %#x, want %#x", s, got, want)
		}
	}
}

// TestSuccessors checks the failover walk: distinct peers, owner first,
// dead peers skipped, and the full preference list covering everyone.
func TestSuccessors(t *testing.T) {
	peers := testPeers(4)
	r, err := NewRing(peers, 64)
	if err != nil {
		t.Fatal(err)
	}
	key := "hsn|l=3|nucleus=q2"
	all := r.Successors(key, 0, nil)
	if len(all) != len(peers) {
		t.Fatalf("Successors(max=0) returned %d peers, want %d", len(all), len(peers))
	}
	seen := map[string]bool{}
	for _, p := range all {
		if seen[p] {
			t.Fatalf("duplicate peer %s in successor list", p)
		}
		seen[p] = true
	}
	if all[0] != r.Owner(key, nil) {
		t.Fatalf("first successor %s != owner %s", all[0], r.Owner(key, nil))
	}

	dead := all[0]
	alive := func(p string) bool { return p != dead }
	failover := r.Successors(key, 1, alive)
	if len(failover) != 1 || failover[0] != all[1] {
		t.Fatalf("with owner dead, Successors(max=1) = %v, want [%s]", failover, all[1])
	}
}

// TestRingRejectsBadConfig checks constructor validation.
func TestRingRejectsBadConfig(t *testing.T) {
	if _, err := NewRing(nil, 64); err == nil {
		t.Error("empty peer list accepted")
	}
	if _, err := NewRing([]string{"http://a:1"}, 0); err == nil {
		t.Error("vnodes=0 accepted")
	}
	if _, err := NewRing([]string{"http://a:1", "http://a:1"}, 8); err == nil {
		t.Error("duplicate peer accepted")
	}
}
