package cache

import (
	"context"
	"sync/atomic"
	"testing"
)

// TestLookup covers the byte-keyed probe: misses are silent (no counter,
// no build), hits count and refresh LRU recency exactly like GetOrBuild,
// and the []byte key is never retained.
func TestLookup(t *testing.T) {
	c := New(Config{Shards: 1})
	if v, ok := c.Lookup([]byte("a")); ok || v != nil {
		t.Fatalf("Lookup on empty cache = %v, %v", v, ok)
	}
	if st := c.Stats(); st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("miss must not touch counters: %+v", st)
	}

	var builds atomic.Int64
	ctx := context.Background()
	for _, k := range []string{"a", "b"} {
		if _, _, err := c.GetOrBuild(ctx, k, constBuild(&builds, 1, 10)); err != nil {
			t.Fatal(err)
		}
	}
	// Single shard: LRU order is global. "b" is most recent; a Lookup on
	// "a" must move it back to the front.
	v, ok := c.Lookup([]byte("a"))
	if !ok || v.(blob).id != 1 {
		t.Fatalf("Lookup(a) = %v, %v", v, ok)
	}
	if keys := c.Keys(); len(keys) != 2 || keys[0] != "a" {
		t.Fatalf("Lookup did not refresh recency: %v", keys)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 2 {
		t.Fatalf("hits=%d misses=%d, want 1 hit (the Lookup) and 2 misses", st.Hits, st.Misses)
	}

	// Mutating the key buffer after Lookup must not corrupt the cache:
	// the map key is a copy, not an alias.
	kb := []byte("b")
	if _, ok := c.Lookup(kb); !ok {
		t.Fatal("Lookup(b) missed")
	}
	kb[0] = 'X'
	if _, ok := c.Lookup([]byte("b")); !ok {
		t.Fatal("entry for b vanished after caller mutated its key buffer")
	}

	// A Lookup miss followed by GetOrBuild preserves the one-miss
	// accounting the smoke tests assert on.
	if _, ok := c.Lookup([]byte("c")); ok {
		t.Fatal("Lookup(c) hit before build")
	}
	if _, hit, err := c.GetOrBuild(ctx, "c", constBuild(&builds, 3, 10)); err != nil || hit {
		t.Fatalf("GetOrBuild(c): hit=%v err=%v", hit, err)
	}
	st = c.Stats()
	// Three hits so far: Lookup(a) and the two Lookup(b) probes.
	if st.Hits != 3 || st.Misses != 3 {
		t.Fatalf("hits=%d misses=%d, want 3/3", st.Hits, st.Misses)
	}
}

// TestLookupZeroAllocs asserts the warm byte-keyed probe does not
// allocate — the property the serving hot path builds on.
func TestLookupZeroAllocs(t *testing.T) {
	c := New(Config{})
	var builds atomic.Int64
	if _, _, err := c.GetOrBuild(context.Background(), "hot", constBuild(&builds, 1, 10)); err != nil {
		t.Fatal(err)
	}
	key := []byte("hot")
	allocs := testing.AllocsPerRun(200, func() {
		if _, ok := c.Lookup(key); !ok {
			t.Fatal("warm Lookup missed")
		}
	})
	if allocs != 0 {
		t.Errorf("Lookup: %.2f allocs/op, want 0", allocs)
	}
}
