package cache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// blob is a test value with a fixed size.
type blob struct {
	id   int
	size int64
}

func (b blob) SizeBytes() int64 { return b.size }

func constBuild(counter *atomic.Int64, id int, size int64) BuildFunc {
	return func(context.Context) (Value, error) {
		counter.Add(1)
		return blob{id: id, size: size}, nil
	}
}

// TestSingleflight hammers one key from many goroutines and asserts the
// build ran exactly once and every caller observed the same value.  Run
// under -race this also exercises the shard locking.
func TestSingleflight(t *testing.T) {
	c := New(Config{MaxBytes: 1 << 20, Shards: 4})
	var builds atomic.Int64
	gate := make(chan struct{})
	build := func(context.Context) (Value, error) {
		builds.Add(1)
		<-gate // hold the flight open until every goroutine has joined
		return blob{id: 7, size: 100}, nil
	}

	const goroutines = 128
	var started, wg sync.WaitGroup
	started.Add(goroutines)
	wg.Add(goroutines)
	var hits atomic.Int64
	for i := 0; i < goroutines; i++ {
		go func() {
			defer wg.Done()
			started.Done()
			v, hit, err := c.GetOrBuild(context.Background(), "k", build)
			if err != nil {
				t.Errorf("GetOrBuild: %v", err)
				return
			}
			if v.(blob).id != 7 {
				t.Errorf("got %v", v)
			}
			if hit {
				hits.Add(1)
			}
		}()
	}
	started.Wait()
	time.Sleep(10 * time.Millisecond) // let the stragglers reach the flight
	close(gate)
	wg.Wait()

	if n := builds.Load(); n != 1 {
		t.Fatalf("build ran %d times, want 1", n)
	}
	if n := hits.Load(); n != goroutines-1 {
		t.Errorf("%d hits, want %d (all but the flight initiator)", n, goroutines-1)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != goroutines-1 {
		t.Errorf("stats hits=%d misses=%d, want %d/1", st.Hits, st.Misses, goroutines-1)
	}
	if st.InFlight != 0 {
		t.Errorf("in-flight %d after drain, want 0", st.InFlight)
	}
}

// TestSingleflightDistinctKeys checks that distinct keys build
// independently, once each, under concurrency.
func TestSingleflightDistinctKeys(t *testing.T) {
	c := New(Config{MaxBytes: 1 << 20, Shards: 8})
	const keys = 16
	const per = 8
	counters := make([]atomic.Int64, keys)
	var wg sync.WaitGroup
	for k := 0; k < keys; k++ {
		build := constBuild(&counters[k], k, 64)
		key := fmt.Sprintf("key-%d", k)
		for i := 0; i < per; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				v, _, err := c.GetOrBuild(context.Background(), key, build)
				if err != nil {
					t.Errorf("%s: %v", key, err)
					return
				}
				if v.(blob).id != k {
					t.Errorf("%s: wrong value %v", key, v)
				}
			}()
		}
	}
	wg.Wait()
	for k := range counters {
		if n := counters[k].Load(); n != 1 {
			t.Errorf("key %d built %d times, want 1", k, n)
		}
	}
	st := c.Stats()
	if st.Misses != keys {
		t.Errorf("misses = %d, want %d", st.Misses, keys)
	}
	if st.Hits+st.Misses != keys*per {
		t.Errorf("hits+misses = %d, want %d", st.Hits+st.Misses, keys*per)
	}
}

// TestLRUEvictionOrder uses a single shard and a budget of three entries
// and asserts exact least-recently-used eviction order, with a re-build
// counting as a fresh miss.
func TestLRUEvictionOrder(t *testing.T) {
	c := New(Config{MaxBytes: 300, Shards: 1})
	var builds [4]atomic.Int64
	get := func(name string, i int) {
		t.Helper()
		if _, _, err := c.GetOrBuild(context.Background(), name, constBuild(&builds[i], i, 100)); err != nil {
			t.Fatal(err)
		}
	}
	get("a", 0)
	get("b", 1)
	get("c", 2)
	get("a", 0) // a is now MRU; b is LRU
	get("d", 3) // over budget: must evict b

	st := c.Stats()
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	if st.Entries != 3 || st.Bytes != 300 {
		t.Fatalf("entries=%d bytes=%d, want 3/300", st.Entries, st.Bytes)
	}
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted (LRU)")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s should still be cached", k)
		}
	}
	// Re-fetching b rebuilds it (miss) and evicts the next LRU entry, c.
	get("b", 1)
	if n := builds[1].Load(); n != 2 {
		t.Fatalf("b built %d times, want 2", n)
	}
	if _, ok := c.Get("c"); ok {
		t.Fatal("c should have been evicted after b's rebuild")
	}
}

// TestOversizeValueNotCached checks that a value bigger than the shard
// budget is returned to callers but never stored.
func TestOversizeValueNotCached(t *testing.T) {
	c := New(Config{MaxBytes: 100, Shards: 1})
	var builds atomic.Int64
	for i := 0; i < 2; i++ {
		v, _, err := c.GetOrBuild(context.Background(), "big", constBuild(&builds, 1, 1000))
		if err != nil {
			t.Fatal(err)
		}
		if v.(blob).size != 1000 {
			t.Fatalf("wrong value %v", v)
		}
	}
	if n := builds.Load(); n != 2 {
		t.Fatalf("oversize value built %d times, want 2 (never cached)", n)
	}
	st := c.Stats()
	if st.Oversize != 2 || st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("oversize=%d entries=%d bytes=%d, want 2/0/0", st.Oversize, st.Entries, st.Bytes)
	}
}

// TestContextCancellation checks that a waiter whose context is cancelled
// returns promptly from a deliberately slow build, and that the build's
// own context is cancelled once the last waiter abandons the flight.
func TestContextCancellation(t *testing.T) {
	c := New(Config{MaxBytes: 1 << 20, Shards: 1})
	buildCtxDone := make(chan struct{})
	entered := make(chan struct{})
	build := func(ctx context.Context) (Value, error) {
		close(entered)
		select {
		case <-ctx.Done(): // the only way out: waiter-refcount cancellation
			close(buildCtxDone)
			return nil, ctx.Err()
		case <-time.After(30 * time.Second):
			return blob{id: 1, size: 1}, nil
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, _, err := c.GetOrBuild(ctx, "slow", build)
		errCh <- err
	}()
	<-entered
	cancel()

	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("GetOrBuild did not return promptly after cancellation")
	}
	select {
	case <-buildCtxDone:
	case <-time.After(2 * time.Second):
		t.Fatal("build context was not cancelled after the last waiter left")
	}
	// The failed flight must not be cached and in-flight must drain.
	deadline := time.Now().Add(2 * time.Second)
	for c.Stats().InFlight != 0 {
		if time.Now().After(deadline) {
			t.Fatal("in-flight build never drained")
		}
		time.Sleep(time.Millisecond)
	}
	if _, ok := c.Get("slow"); ok {
		t.Fatal("cancelled build must not be cached")
	}
}

// TestCancelledWaiterDoesNotKillOthers: two waiters on one flight; the
// first cancels, the second must still receive the built value.
func TestCancelledWaiterDoesNotKillOthers(t *testing.T) {
	c := New(Config{MaxBytes: 1 << 20, Shards: 1})
	gate := make(chan struct{})
	entered := make(chan struct{})
	build := func(ctx context.Context) (Value, error) {
		close(entered)
		select {
		case <-gate:
			return blob{id: 9, size: 10}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}

	ctx1, cancel1 := context.WithCancel(context.Background())
	err1 := make(chan error, 1)
	go func() {
		_, _, err := c.GetOrBuild(ctx1, "k", build)
		err1 <- err
	}()
	<-entered

	val2 := make(chan Value, 1)
	err2 := make(chan error, 1)
	go func() {
		v, _, err := c.GetOrBuild(context.Background(), "k", build)
		val2 <- v
		err2 <- err
	}()
	// Wait until the second caller has joined the flight (waiters == 2).
	deadline := time.Now().Add(2 * time.Second)
	for {
		s := c.shardFor("k")
		s.mu.Lock()
		w := 0
		if f := s.flights["k"]; f != nil {
			w = f.waiters
		}
		s.mu.Unlock()
		if w == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("second waiter never joined the flight")
		}
		time.Sleep(time.Millisecond)
	}

	cancel1()
	if err := <-err1; !errors.Is(err, context.Canceled) {
		t.Fatalf("waiter 1 err = %v, want context.Canceled", err)
	}
	close(gate) // let the build finish for waiter 2
	if err := <-err2; err != nil {
		t.Fatalf("waiter 2 err = %v, want nil", err)
	}
	if v := <-val2; v.(blob).id != 9 {
		t.Fatalf("waiter 2 got %v", v)
	}
}

// TestBuildErrorNotCached: a failed build propagates its error to all
// waiters and leaves nothing cached, so the next call retries.
func TestBuildErrorNotCached(t *testing.T) {
	c := New(Config{Shards: 1})
	boom := errors.New("boom")
	var calls atomic.Int64
	failing := func(context.Context) (Value, error) {
		calls.Add(1)
		return nil, boom
	}
	if _, _, err := c.GetOrBuild(context.Background(), "k", failing); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if _, _, err := c.GetOrBuild(context.Background(), "k", failing); !errors.Is(err, boom) {
		t.Fatalf("retry err = %v, want boom", err)
	}
	if n := calls.Load(); n != 2 {
		t.Fatalf("failing build called %d times, want 2 (errors are not cached)", n)
	}
}

// TestConcurrentHammer mixes hot keys, cold keys, evictions, and
// cancellations under -race.
func TestConcurrentHammer(t *testing.T) {
	c := New(Config{MaxBytes: 64 * 10, Shards: 4}) // tight: forces evictions
	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("key-%d", (g+i)%13)
				ctx := context.Background()
				if i%7 == 0 {
					var cancel context.CancelFunc
					ctx, cancel = context.WithTimeout(ctx, time.Microsecond)
					defer cancel()
				}
				v, _, err := c.GetOrBuild(ctx, key, func(context.Context) (Value, error) {
					return blob{id: 1, size: 64}, nil
				})
				if err == nil && v == nil {
					t.Error("nil value with nil error")
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Bytes > st.MaxBytes {
		t.Fatalf("bytes %d exceed budget %d", st.Bytes, st.MaxBytes)
	}
	deadline := time.Now().Add(2 * time.Second)
	for c.Stats().InFlight != 0 {
		if time.Now().After(deadline) {
			t.Fatal("in-flight builds never drained")
		}
		time.Sleep(time.Millisecond)
	}
}
