// Package cache is a sharded, byte-budgeted, in-memory LRU cache with
// singleflight build deduplication, built for the topology-serving daemon
// (internal/serve): built topologies are immutable CSR arenas (PR 2), so a
// cached value can be handed to any number of concurrent readers, and the
// small family parameter space is queried repeatedly, so N concurrent
// requests for the same key should trigger exactly one build.
//
// Concurrency model: the key space is split over power-of-two shards, each
// guarded by one mutex that is only ever held for map/list surgery — never
// across a build.  A build runs in its own goroutine under a context that
// is detached from any single caller's cancellation; each waiter blocks on
// the flight's done channel or its own context, and the build context is
// cancelled only when the last waiter abandons the flight, so one
// impatient client cannot kill a build other clients still want.
package cache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// Value is a cacheable artifact.  SizeBytes must be constant for the
// lifetime of the value (built topologies are immutable, so this holds by
// construction).
type Value interface {
	SizeBytes() int64
}

// BuildFunc constructs the value for a key.  The context is cancelled when
// every waiter for the key has abandoned the flight; long builds should
// check it periodically.
type BuildFunc func(ctx context.Context) (Value, error)

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	Hits      int64 // served from cache or joined an in-flight build
	Misses    int64 // initiated a build
	Evictions int64 // entries removed to fit the byte budget
	Oversize  int64 // values larger than a shard budget, served uncached
	InFlight  int64 // builds currently running
	Entries   int64 // cached entries
	Bytes     int64 // bytes held by cached entries
	MaxBytes  int64 // configured total budget (0 = unbounded)
}

// Config sizes a Cache.
type Config struct {
	// MaxBytes is the total byte budget across all shards; 0 or negative
	// means unbounded.  The budget is split evenly over the shards, so
	// per-shard eviction order is exact LRU while cross-shard totals are
	// approximate (the standard sharded-LRU trade).
	MaxBytes int64
	// Shards is rounded up to a power of two; 0 means 16.  Use 1 in tests
	// that assert global LRU order.
	Shards int
}

// Cache is the sharded singleflight LRU.  The zero value is not usable;
// call New.
type Cache struct {
	shards []shard
	mask   uint32

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
	oversize  atomic.Int64
	inFlight  atomic.Int64
	maxBytes  int64
}

type entry struct {
	key        string
	val        Value
	size       int64
	prev, next *entry // LRU list; head = most recently used
}

// flight is one in-progress build.  waiters is guarded by the shard mutex.
type flight struct {
	done    chan struct{}
	val     Value
	err     error
	waiters int
	cancel  context.CancelFunc
}

type shard struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	entries  map[string]*entry
	flights  map[string]*flight
	head     *entry
	tail     *entry
}

// New returns an empty cache.
func New(cfg Config) *Cache {
	n := cfg.Shards
	if n <= 0 {
		n = 16
	}
	// Round up to a power of two so shard selection is a mask, capping
	// the count well inside uint32 (more shards than that is a config
	// typo, not a workload).
	pow := 1
	for pow < n && pow < 1<<16 {
		pow <<= 1
	}
	//lint:ignore indextrunc pow is capped at 1<<16 by the loop above
	c := &Cache{shards: make([]shard, pow), mask: uint32(pow - 1)}
	if cfg.MaxBytes > 0 {
		c.maxBytes = cfg.MaxBytes
	}
	per := int64(0)
	if c.maxBytes > 0 {
		per = c.maxBytes / int64(pow)
		if per <= 0 {
			per = 1
		}
	}
	for i := range c.shards {
		c.shards[i].maxBytes = per
		c.shards[i].entries = make(map[string]*entry)
		c.shards[i].flights = make(map[string]*flight)
	}
	return c
}

// fnv32 is the FNV-1a shard hash.  It is generic over string/[]byte so
// Lookup can hash a pooled key buffer without converting it to a string.
func fnv32[K string | []byte](key K) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= prime32
	}
	return h
}

// shardFor hashes the key (FNV-1a) onto a shard.
func (c *Cache) shardFor(key string) *shard {
	return &c.shards[fnv32(key)&c.mask]
}

// GetOrBuild returns the cached value for key, joining an in-flight build
// for it if one exists, or starting one via build otherwise.  hit reports
// whether the caller avoided initiating a build (cache hit or joined
// flight).  If ctx is cancelled while waiting, GetOrBuild returns
// promptly with ctx's error; the build keeps running for the remaining
// waiters and is cancelled only when the last one leaves.
func (c *Cache) GetOrBuild(ctx context.Context, key string, build BuildFunc) (val Value, hit bool, err error) {
	s := c.shardFor(key)
	s.mu.Lock()
	if e := s.entries[key]; e != nil {
		s.moveToFront(e)
		s.mu.Unlock()
		c.hits.Add(1)
		return e.val, true, nil
	}
	f := s.flights[key]
	if f != nil {
		f.waiters++
		c.hits.Add(1)
		hit = true
	} else {
		c.misses.Add(1)
		// Detach the build from this caller's cancellation: waiters with
		// longer deadlines must still get the value.  The flight is
		// cancelled via refcount when the last waiter abandons it.
		bctx, cancel := context.WithCancel(context.WithoutCancel(ctx))
		f = &flight{done: make(chan struct{}), waiters: 1, cancel: cancel}
		s.flights[key] = f
		c.inFlight.Add(1)
		go c.runBuild(bctx, s, key, f, build)
	}
	s.mu.Unlock()

	select {
	case <-f.done:
		return f.val, hit, f.err
	case <-ctx.Done():
		s.abandon(f)
		return nil, hit, ctx.Err()
	}
}

// Lookup returns the cached value for key with GetOrBuild's hit
// semantics — the hit is counted and the entry moves to the LRU front —
// but it never builds or joins a flight on miss, and a miss is not
// counted (the caller's follow-up GetOrBuild counts it when it starts
// the build).  The key is accepted as []byte and never retained, so hot
// request paths can pass a pooled key buffer: the map access compiles to
// a no-allocation string conversion, making a warm lookup allocation-free.
func (c *Cache) Lookup(key []byte) (Value, bool) {
	s := &c.shards[fnv32(key)&c.mask]
	s.mu.Lock()
	if e := s.entries[string(key)]; e != nil {
		s.moveToFront(e)
		s.mu.Unlock()
		c.hits.Add(1)
		return e.val, true
	}
	s.mu.Unlock()
	return nil, false
}

// Get peeks at the cache without building, joining flights, counting a
// hit or miss, or updating LRU recency.
func (c *Cache) Get(key string) (Value, bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if e := s.entries[key]; e != nil {
		return e.val, true
	}
	return nil, false
}

// runBuild executes one flight and publishes its result.  It is joined by
// every waiter through f.done (see the select in GetOrBuild).
func (c *Cache) runBuild(ctx context.Context, s *shard, key string, f *flight, build BuildFunc) {
	v, err := build(ctx)
	if err == nil && v == nil {
		err = errors.New("cache: build returned a nil value")
	}
	s.mu.Lock()
	delete(s.flights, key)
	f.val, f.err = v, err
	if err == nil {
		s.insert(c, key, v)
	}
	s.mu.Unlock()
	f.cancel() // release the flight context; no-op if abandon already fired it
	close(f.done)
	c.inFlight.Add(-1)
}

// abandon is called by a waiter whose context was cancelled; when the last
// waiter leaves, the flight's build context is cancelled so a slow build
// for a key nobody wants anymore stops promptly.
func (s *shard) abandon(f *flight) {
	s.mu.Lock()
	f.waiters--
	last := f.waiters == 0
	s.mu.Unlock()
	if last {
		f.cancel()
	}
}

// insert adds a freshly built value and evicts from the LRU tail until the
// shard fits its budget.  Caller holds s.mu.
func (s *shard) insert(c *Cache, key string, v Value) {
	size := v.SizeBytes()
	if size < 0 {
		size = 0
	}
	if s.maxBytes > 0 && size > s.maxBytes {
		// The value alone exceeds the shard budget: hand it to the waiters
		// but do not cache it, so one giant topology cannot flush the
		// whole shard.
		c.oversize.Add(1)
		return
	}
	if old := s.entries[key]; old != nil {
		// A racing insert for the same key (possible only via future APIs;
		// flights prevent it today) — replace in place.
		s.bytes -= old.size
		s.unlink(old)
		delete(s.entries, key)
	}
	e := &entry{key: key, val: v, size: size}
	s.entries[key] = e
	s.pushFront(e)
	s.bytes += size
	for s.maxBytes > 0 && s.bytes > s.maxBytes && s.tail != nil && s.tail != e {
		c.evictions.Add(1)
		s.evict(s.tail)
	}
}

func (s *shard) evict(e *entry) {
	s.unlink(e)
	delete(s.entries, e.key)
	s.bytes -= e.size
}

func (s *shard) pushFront(e *entry) {
	e.prev = nil
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *shard) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (s *shard) moveToFront(e *entry) {
	if s.head == e {
		return
	}
	s.unlink(e)
	s.pushFront(e)
}

// Stats snapshots the counters.  Entries and Bytes take every shard lock
// briefly, so the snapshot is consistent per shard but not across shards.
func (c *Cache) Stats() Stats {
	st := Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Oversize:  c.oversize.Load(),
		InFlight:  c.inFlight.Load(),
		MaxBytes:  c.maxBytes,
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Entries += int64(len(s.entries))
		st.Bytes += s.bytes
		s.mu.Unlock()
	}
	return st
}

// Len returns the number of cached entries.
func (c *Cache) Len() int { return int(c.Stats().Entries) }

// Keys returns the cached keys of every shard in LRU order (most recently
// used first within a shard), for tests and debugging.
func (c *Cache) Keys() []string {
	var keys []string
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for e := s.head; e != nil; e = e.next {
			keys = append(keys, e.key)
		}
		s.mu.Unlock()
	}
	return keys
}

// Remove drops a key from the cache if present (in-flight builds are
// unaffected).  It reports whether an entry was removed.
func (c *Cache) Remove(key string) bool {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.entries[key]
	if e == nil {
		return false
	}
	s.evict(e)
	return true
}

// String summarizes the cache state.
func (c *Cache) String() string {
	st := c.Stats()
	return fmt.Sprintf("cache{entries=%d bytes=%d/%d hits=%d misses=%d evictions=%d inflight=%d}",
		st.Entries, st.Bytes, st.MaxBytes, st.Hits, st.Misses, st.Evictions, st.InFlight)
}
