// Package breaker is the per-key circuit breaker shared by the serving
// layer (one circuit per network family, PR 5) and the cluster layer
// (one circuit per peer replica): threshold consecutive genuine failures
// for one key open its circuit, and for cooldown every request against
// that key fast-fails without touching the guarded resource.  After the
// cooldown one probe is let through (half-open); success closes the
// circuit, failure re-opens it for another cooldown.
package breaker

import (
	"errors"
	"sync"
	"time"
)

// ErrOpen is returned by Allow while a key's circuit is open; callers
// translate it to their own fast-fail response (the daemon answers 503 +
// Retry-After).
var ErrOpen = errors.New("breaker: circuit open")

// Outcome classifies one admitted request for Report.  Neutral outcomes
// — client errors, pool saturation, cancelled or expired contexts — say
// nothing about the key's health and neither trip nor close the breaker.
type Outcome int

const (
	OK Outcome = iota
	Neutral
	Fail
)

// State is a key's circuit position, readable without side effects via
// (*Set).State.
type State int

const (
	Closed   State = iota // admitting requests normally
	Open                  // fast-failing inside the cooldown window
	HalfOpen              // cooldown elapsed; waiting for or running a probe
)

// String renders the state for status endpoints.
func (s State) String() string {
	switch s {
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	}
	return "closed"
}

// Set is a family of per-key circuit breakers sharing one threshold and
// cooldown.  A nil *Set is a disabled breaker: Allow always succeeds,
// Report and the state queries are no-ops.
type Set struct {
	threshold int
	cooldown  time.Duration

	mu      sync.Mutex
	entries map[string]*entry
	opens   int64 // transitions to open, for the Prometheus counter
}

type entry struct {
	failures int       // consecutive genuine failures
	openedAt time.Time // when failures reached the threshold
	probing  bool      // a half-open probe is in flight
}

// NewSet builds a breaker set; threshold <= 0 returns nil (disabled).
func NewSet(threshold int, cooldown time.Duration) *Set {
	if threshold <= 0 {
		return nil
	}
	return &Set{
		threshold: threshold,
		cooldown:  cooldown,
		entries:   make(map[string]*entry),
	}
}

// tripped reports whether e has reached the failure threshold.
func (b *Set) tripped(e *entry) bool { return e.failures >= b.threshold }

// Allow reports whether a request for key may proceed.  While the
// circuit is open it returns ErrOpen; in the half-open window it admits
// exactly one probe at a time.  An admitted request must be concluded
// with Report, or the probe slot stays taken until another cooldown.
func (b *Set) Allow(key string, now time.Time) error {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.entries[key]
	if e == nil || !b.tripped(e) {
		return nil
	}
	if now.Sub(e.openedAt) < b.cooldown {
		return ErrOpen
	}
	if e.probing {
		return ErrOpen // one probe at a time
	}
	e.probing = true
	return nil
}

// Report records the outcome of an admitted request for key.  A neutral
// outcome releases a half-open probe without a verdict, so the next
// request may probe again instead of the breaker wedging open.
func (b *Set) Report(key string, outcome Outcome, now time.Time) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.entries[key]
	if e == nil {
		if outcome != Fail {
			return
		}
		e = &entry{}
		b.entries[key] = e
	}
	wasTripped := b.tripped(e)
	switch outcome {
	case OK:
		e.failures = 0
		e.probing = false
	case Neutral:
		e.probing = false
	case Fail:
		e.probing = false
		if wasTripped {
			// Failed half-open probe: re-open for another cooldown.
			e.openedAt = now
			b.opens++
			return
		}
		e.failures++
		if b.tripped(e) {
			e.openedAt = now
			b.opens++
		}
	}
}

// State reads key's circuit position without side effects (Allow, in
// contrast, claims the half-open probe slot).
func (b *Set) State(key string, now time.Time) State {
	if b == nil {
		return Closed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.entries[key]
	if e == nil || !b.tripped(e) {
		return Closed
	}
	if now.Sub(e.openedAt) < b.cooldown {
		return Open
	}
	return HalfOpen
}

// States counts circuits currently open and half-open (cooldown elapsed,
// waiting for or running a probe), plus the total open transitions.
func (b *Set) States(now time.Time) (open, halfOpen, opens int64) {
	if b == nil {
		return 0, 0, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, e := range b.entries {
		if !b.tripped(e) {
			continue
		}
		if now.Sub(e.openedAt) < b.cooldown {
			open++
		} else {
			halfOpen++
		}
	}
	return open, halfOpen, b.opens
}
