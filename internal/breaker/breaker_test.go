package breaker

import (
	"errors"
	"testing"
	"time"
)

// TestLifecycle walks one key through the full circuit: closed under the
// threshold, open after it, half-open probing after the cooldown, and
// closed again on a successful probe.
func TestLifecycle(t *testing.T) {
	b := NewSet(3, time.Second)
	t0 := time.Unix(0, 0)

	for i := 0; i < 2; i++ {
		if err := b.Allow("k", t0); err != nil {
			t.Fatalf("Allow before threshold: %v", err)
		}
		b.Report("k", Fail, t0)
	}
	if got := b.State("k", t0); got != Closed {
		t.Fatalf("state after 2 failures = %v, want Closed", got)
	}

	if err := b.Allow("k", t0); err != nil {
		t.Fatalf("Allow at threshold: %v", err)
	}
	b.Report("k", Fail, t0)
	if got := b.State("k", t0); got != Open {
		t.Fatalf("state after 3 failures = %v, want Open", got)
	}
	if err := b.Allow("k", t0.Add(500*time.Millisecond)); !errors.Is(err, ErrOpen) {
		t.Fatalf("Allow inside cooldown = %v, want ErrOpen", err)
	}

	t1 := t0.Add(2 * time.Second)
	if got := b.State("k", t1); got != HalfOpen {
		t.Fatalf("state after cooldown = %v, want HalfOpen", got)
	}
	if err := b.Allow("k", t1); err != nil {
		t.Fatalf("half-open probe rejected: %v", err)
	}
	// Only one probe at a time.
	if err := b.Allow("k", t1); !errors.Is(err, ErrOpen) {
		t.Fatalf("second concurrent probe = %v, want ErrOpen", err)
	}
	b.Report("k", OK, t1)
	if got := b.State("k", t1); got != Closed {
		t.Fatalf("state after successful probe = %v, want Closed", got)
	}
	if err := b.Allow("k", t1); err != nil {
		t.Fatalf("Allow after close: %v", err)
	}
}

// TestFailedProbeReopens checks that a Fail verdict on the half-open
// probe restarts the cooldown rather than resetting the failure count.
func TestFailedProbeReopens(t *testing.T) {
	b := NewSet(1, time.Second)
	t0 := time.Unix(100, 0)
	b.Report("k", Fail, t0)

	t1 := t0.Add(time.Second)
	if err := b.Allow("k", t1); err != nil {
		t.Fatalf("probe rejected: %v", err)
	}
	b.Report("k", Fail, t1)
	if got := b.State("k", t1.Add(500*time.Millisecond)); got != Open {
		t.Fatalf("state after failed probe = %v, want Open", got)
	}
	_, _, opens := b.States(t1)
	if opens != 2 {
		t.Fatalf("opens = %d, want 2 (initial trip + failed probe)", opens)
	}
}

// TestNeutralReleasesProbe checks that a Neutral verdict frees the probe
// slot without closing or re-opening the circuit, so the breaker cannot
// wedge open when a probe's outcome says nothing about health.
func TestNeutralReleasesProbe(t *testing.T) {
	b := NewSet(1, time.Second)
	t0 := time.Unix(0, 0)
	b.Report("k", Fail, t0)

	t1 := t0.Add(time.Second)
	if err := b.Allow("k", t1); err != nil {
		t.Fatalf("probe rejected: %v", err)
	}
	b.Report("k", Neutral, t1)
	// Slot released: another probe may go immediately.
	if err := b.Allow("k", t1); err != nil {
		t.Fatalf("probe after neutral release rejected: %v", err)
	}
	b.Report("k", OK, t1)
	if got := b.State("k", t1); got != Closed {
		t.Fatalf("state = %v, want Closed", got)
	}
}

// TestOKResetsConsecutiveCount checks that successes between failures
// keep the circuit closed: only *consecutive* failures trip it.
func TestOKResetsConsecutiveCount(t *testing.T) {
	b := NewSet(2, time.Second)
	t0 := time.Unix(0, 0)
	for i := 0; i < 5; i++ {
		b.Report("k", Fail, t0)
		b.Report("k", OK, t0)
	}
	if got := b.State("k", t0); got != Closed {
		t.Fatalf("state after alternating outcomes = %v, want Closed", got)
	}
}

// TestKeysAreIndependent checks that one key's open circuit does not
// affect another's.
func TestKeysAreIndependent(t *testing.T) {
	b := NewSet(1, time.Minute)
	t0 := time.Unix(0, 0)
	b.Report("a", Fail, t0)
	if err := b.Allow("a", t0); !errors.Is(err, ErrOpen) {
		t.Fatalf("a should be open, got %v", err)
	}
	if err := b.Allow("b", t0); err != nil {
		t.Fatalf("b should be unaffected, got %v", err)
	}
	open, halfOpen, _ := b.States(t0)
	if open != 1 || halfOpen != 0 {
		t.Fatalf("States = (%d open, %d half-open), want (1, 0)", open, halfOpen)
	}
}

// TestNilSetDisabled checks the nil-receiver contract: everything is a
// permissive no-op.
func TestNilSetDisabled(t *testing.T) {
	var b *Set
	if b != NewSet(0, time.Second) {
		t.Fatal("NewSet(0, ...) should return nil")
	}
	if err := b.Allow("k", time.Now()); err != nil {
		t.Fatalf("nil Allow = %v, want nil", err)
	}
	b.Report("k", Fail, time.Now())
	if got := b.State("k", time.Now()); got != Closed {
		t.Fatalf("nil State = %v, want Closed", got)
	}
	open, halfOpen, opens := b.States(time.Now())
	if open != 0 || halfOpen != 0 || opens != 0 {
		t.Fatal("nil States should be all zero")
	}
}

// TestStateIsSideEffectFree checks that State never claims the half-open
// probe slot — the cluster ring calls it on every ownership lookup, and
// a lookup must not consume the probe a real fetch needs.
func TestStateIsSideEffectFree(t *testing.T) {
	b := NewSet(1, time.Second)
	t0 := time.Unix(0, 0)
	b.Report("k", Fail, t0)
	t1 := t0.Add(time.Second)
	for i := 0; i < 10; i++ {
		if got := b.State("k", t1); got != HalfOpen {
			t.Fatalf("State #%d = %v, want HalfOpen", i, got)
		}
	}
	if err := b.Allow("k", t1); err != nil {
		t.Fatalf("probe slot consumed by State reads: %v", err)
	}
}
