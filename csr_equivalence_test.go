package ipg

import (
	"context"
	"math/rand"
	"sort"
	"testing"

	"ipg/internal/graph"
	"ipg/internal/nucleus"
	"ipg/internal/superipg"
	"ipg/internal/topo"
	"ipg/internal/topology"
)

// csrGolden pins the metrics of every materialized family to values
// captured with the pre-CSR per-row adjacency representation.  The CSR
// arena sorts each row ascending exactly as the old representation did,
// so every metric — including the seeded greedy bisection search, which
// is sensitive to neighbor iteration order — must reproduce bit-identical
// values.  A mismatch here means the representation changed observable
// behavior, not just layout.
type csrGolden struct {
	name         string
	build        func() *graph.Graph
	n, m         int
	minDeg       int
	maxDeg       int
	diameter     int
	avgDistance  float64
	bisectionCut int
	avgDegree    float64
}

func csrGoldens() []csrGolden {
	q2 := func() *nucleus.Nucleus { return nucleus.Hypercube(2) }
	return []csrGolden{
		{
			name:  "HSN(3,Q2)",
			build: func() *graph.Graph { return superipg.HSN(3, q2()).MustBuild().Undirected() },
			n:     64, m: 112, minDeg: 2, maxDeg: 4, diameter: 8,
			avgDistance: 3.57421875, bisectionCut: 18, avgDegree: 3.5,
		},
		{
			name:  "ring-CN(3,Q2)",
			build: func() *graph.Graph { return superipg.RingCN(3, q2()).MustBuild().Undirected() },
			n:     64, m: 124, minDeg: 2, maxDeg: 4, diameter: 8,
			avgDistance: 3.599609375, bisectionCut: 24, avgDegree: 3.875,
		},
		{
			name:  "complete-CN(3,Q2)",
			build: func() *graph.Graph { return superipg.CompleteCN(3, q2()).MustBuild().Undirected() },
			n:     64, m: 124, minDeg: 2, maxDeg: 4, diameter: 8,
			avgDistance: 3.599609375, bisectionCut: 24, avgDegree: 3.875,
		},
		{
			name:  "SFN(3,Q2)",
			build: func() *graph.Graph { return superipg.SFN(3, q2()).MustBuild().Undirected() },
			n:     64, m: 112, minDeg: 2, maxDeg: 4, diameter: 8,
			avgDistance: 3.57421875, bisectionCut: 18, avgDegree: 3.5,
		},
		{
			name:  "Q6",
			build: func() *graph.Graph { return topology.NewHypercube(6).G },
			n:     64, m: 192, minDeg: 6, maxDeg: 6, diameter: 6,
			avgDistance: 3, bisectionCut: 52, avgDegree: 6,
		},
		{
			name:  "8-ary 2-cube",
			build: func() *graph.Graph { return topology.NewTorus(8, 2).G },
			n:     64, m: 128, minDeg: 4, maxDeg: 4, diameter: 8,
			avgDistance: 4, bisectionCut: 20, avgDegree: 4,
		},
		{
			name:  "CCC(3)",
			build: func() *graph.Graph { return topology.NewCCC(3).G },
			n:     24, m: 36, minDeg: 3, maxDeg: 3, diameter: 6,
			avgDistance: 3.0833333333333335, bisectionCut: 6, avgDegree: 3,
		},
		{
			name:  "WBF(3)",
			build: func() *graph.Graph { return topology.NewButterfly(3).G },
			n:     24, m: 48, minDeg: 4, maxDeg: 4, diameter: 4,
			avgDistance: 2.2916666666666665, bisectionCut: 8, avgDegree: 4,
		},
	}
}

// TestCSREquivalenceGoldens checks the CSR-backed metrics against the
// pre-refactor goldens for all eight families.
func TestCSREquivalenceGoldens(t *testing.T) {
	for _, tc := range csrGoldens() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			g := tc.build()
			if g.N() != tc.n {
				t.Errorf("N = %d, want %d", g.N(), tc.n)
			}
			if g.M() != tc.m {
				t.Errorf("M = %d, want %d", g.M(), tc.m)
			}
			minDeg, maxDeg, avgDeg := g.DegreeStats()
			if minDeg != tc.minDeg || maxDeg != tc.maxDeg {
				t.Errorf("degree range [%d,%d], want [%d,%d]", minDeg, maxDeg, tc.minDeg, tc.maxDeg)
			}
			if avgDeg != tc.avgDegree {
				t.Errorf("avg degree = %v, want %v", avgDeg, tc.avgDegree)
			}
			if d := g.Diameter(); d != tc.diameter {
				t.Errorf("diameter = %d, want %d", d, tc.diameter)
			}
			if a := g.AverageDistance(); a != tc.avgDistance {
				t.Errorf("avg distance = %v, want %v", a, tc.avgDistance)
			}
			// The greedy bisection search consumes the rand stream in
			// neighbor-iteration order: the cut value is bit-identical
			// only if the CSR rows match the old sorted rows exactly.
			_, cut := g.BestBisection(rand.New(rand.NewSource(7)), 3, 50)
			if cut != tc.bisectionCut {
				t.Errorf("BestBisection cut = %d, want %d", cut, tc.bisectionCut)
			}
		})
	}
}

// TestMSBFSMatchesScalarGoldens runs the bit-parallel multi-source BFS
// over every source of all eight golden families and checks each lane's
// eccentricity, distance sum, and full distance vector against the scalar
// kernel, bit for bit.  Together with the random-graph property test in
// internal/topo this pins the batched kernel to the scalar contract on
// the exact graphs the reproduction serves.
func TestMSBFSMatchesScalarGoldens(t *testing.T) {
	for _, tc := range csrGoldens() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			c := tc.build().CSR()
			n := c.N()
			s := topo.NewMSBFSScratch(n)
			scalarDist := make([]int32, n)
			queue := make([]int32, 0, n)
			ecc := make([]int32, 64)
			sum := make([]int64, 64)
			dist := make([]int32, 64*n)
			srcs := make([]int32, 0, 64)
			for lo := 0; lo < n; lo += 64 {
				hi := lo + 64
				if hi > n {
					hi = n
				}
				srcs = srcs[:0]
				for v := lo; v < hi; v++ {
					srcs = append(srcs, int32(v))
				}
				c.MSBFSInto(srcs, s, ecc, sum, dist)
				for i, src := range srcs {
					wantEcc, wantSum := c.BFSInto(int(src), scalarDist, queue)
					if ecc[i] != wantEcc || sum[i] != wantSum {
						t.Fatalf("src %d: msbfs ecc=%d sum=%d, scalar ecc=%d sum=%d",
							src, ecc[i], sum[i], wantEcc, wantSum)
					}
					for v := 0; v < n; v++ {
						if dist[i*n+v] != scalarDist[v] {
							t.Fatalf("src %d: dist[%d] = %d, scalar %d", src, v, dist[i*n+v], scalarDist[v])
						}
					}
				}
			}
		})
	}
}

// implicitGolden pairs a golden family's materialized CSR with its
// codec-backed implicit source and the vertex relabeling between them:
// pi[v] is the implicit vertex id of materialized vertex v.  Baseline
// builders number vertices by codec rank already (pi = identity); a
// super-IPG's implicit vertex id is its mixed-radix group address.
type implicitGolden struct {
	name  string
	build func(t *testing.T) (*topo.CSR, *topo.Implicit, []int32)
}

func superImplicitGolden(name string, build func() *superipg.Network) implicitGolden {
	return implicitGolden{name: name, build: func(t *testing.T) (*topo.CSR, *topo.Implicit, []int32) {
		w := build()
		g := w.MustBuild()
		c := g.Undirected().CSR()
		im, err := w.Implicit()
		if err != nil {
			t.Fatalf("Implicit: %v", err)
		}
		pi := make([]int32, g.N())
		for v := 0; v < g.N(); v++ {
			a, err := w.AddressOf(g.Label(v))
			if err != nil {
				t.Fatalf("AddressOf(%v): %v", g.Label(v), err)
			}
			pi[v] = int32(a)
		}
		return c, im, pi
	}}
}

func baselineImplicitGolden(name string, g func() *graph.Graph, codec func() (topo.Codec, error)) implicitGolden {
	return implicitGolden{name: name, build: func(t *testing.T) (*topo.CSR, *topo.Implicit, []int32) {
		c := g().CSR()
		cd, err := codec()
		if err != nil {
			t.Fatalf("codec: %v", err)
		}
		im := topo.NewImplicit(cd)
		pi := make([]int32, c.N())
		for v := range pi {
			pi[v] = int32(v)
		}
		return c, im, pi
	}}
}

func implicitGoldens() []implicitGolden {
	q2 := func() *nucleus.Nucleus { return nucleus.Hypercube(2) }
	return []implicitGolden{
		superImplicitGolden("HSN(3,Q2)", func() *superipg.Network { return superipg.HSN(3, q2()) }),
		superImplicitGolden("ring-CN(3,Q2)", func() *superipg.Network { return superipg.RingCN(3, q2()) }),
		superImplicitGolden("complete-CN(3,Q2)", func() *superipg.Network { return superipg.CompleteCN(3, q2()) }),
		superImplicitGolden("SFN(3,Q2)", func() *superipg.Network { return superipg.SFN(3, q2()) }),
		baselineImplicitGolden("Q6",
			func() *graph.Graph { return topology.NewHypercube(6).G },
			func() (topo.Codec, error) { return topo.NewHypercubeCodec(6) }),
		baselineImplicitGolden("8-ary 2-cube",
			func() *graph.Graph { return topology.NewTorus(8, 2).G },
			func() (topo.Codec, error) { return topo.NewTorusCodec(8, 2) }),
		baselineImplicitGolden("CCC(3)",
			func() *graph.Graph { return topology.NewCCC(3).G },
			func() (topo.Codec, error) { return topo.NewCCCCodec(3) }),
		baselineImplicitGolden("WBF(3)",
			func() *graph.Graph { return topology.NewButterfly(3).G },
			func() (topo.Codec, error) { return topo.NewButterflyCodec(3) }),
	}
}

// TestImplicitMatchesCSRGoldens checks the codec-backed implicit adjacency
// against the materialized CSR on every golden family, row by row: the
// relabeled CSR row of each vertex must equal the implicit row of its
// image bit for bit.  Passing here means a traversal kernel sees the same
// graph whichever representation backs it.
func TestImplicitMatchesCSRGoldens(t *testing.T) {
	for _, tc := range implicitGoldens() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			c, im, pi := tc.build(t)
			n := c.N()
			if im.N() != n {
				t.Fatalf("implicit N = %d, CSR N = %d", im.N(), n)
			}
			// pi must be a bijection or the row comparison is meaningless.
			seen := make([]bool, n)
			for v, a := range pi {
				if a < 0 || int(a) >= n || seen[a] {
					t.Fatalf("relabeling is not a bijection at v=%d -> %d", v, a)
				}
				seen[a] = true
			}
			var cbuf, ibuf, mapped []int32
			for v := 0; v < n; v++ {
				cbuf = c.NeighborsInto(v, cbuf)
				mapped = mapped[:0]
				for _, u := range cbuf {
					mapped = append(mapped, pi[u])
				}
				sort.Slice(mapped, func(i, j int) bool { return mapped[i] < mapped[j] })
				ibuf = im.NeighborsInto(int(pi[v]), ibuf)
				if len(ibuf) != len(mapped) {
					t.Fatalf("v=%d: implicit degree %d, CSR degree %d", v, len(ibuf), len(mapped))
				}
				for i := range ibuf {
					if ibuf[i] != mapped[i] {
						t.Fatalf("v=%d: implicit row %v, relabeled CSR row %v", v, ibuf, mapped)
					}
				}
				if d := im.Degree(int(pi[v])); d != len(mapped) {
					t.Fatalf("v=%d: implicit Degree = %d, row length %d", v, d, len(mapped))
				}
			}
			if im.DegreeBound() < c.DegreeBound() {
				t.Errorf("implicit DegreeBound %d < CSR max degree %d", im.DegreeBound(), c.DegreeBound())
			}
		})
	}
}

// TestImplicitMetricsMatchCSRGoldens runs the generic metric kernels over
// the implicit source of every golden family and checks diameter and
// average distance against the materialized graph's golden values.  The
// super families are not vertex-transitive as codecs, so this exercises
// the full all-sources sweep over implicit adjacency too.
func TestImplicitMetricsMatchCSRGoldens(t *testing.T) {
	goldens := csrGoldens()
	for i, tc := range implicitGoldens() {
		tc, want := tc, goldens[i]
		if tc.name != want.name {
			t.Fatalf("golden tables out of sync: %q vs %q", tc.name, want.name)
		}
		t.Run(tc.name, func(t *testing.T) {
			_, im, _ := tc.build(t)
			d, err := graph.DiameterSourceCtx(context.Background(), im)
			if err != nil {
				t.Fatalf("DiameterSourceCtx: %v", err)
			}
			if d != want.diameter {
				t.Errorf("implicit diameter = %d, want %d", d, want.diameter)
			}
			a, err := graph.AverageDistanceSourceCtx(context.Background(), im)
			if err != nil {
				t.Fatalf("AverageDistanceSourceCtx: %v", err)
			}
			if a != want.avgDistance {
				t.Errorf("implicit avg distance = %v, want %v", a, want.avgDistance)
			}
		})
	}
}

// TestCSRParallelMetricsMatchSerial checks that the worker-pool metric
// paths see the same finalized CSR as the serial paths.
func TestCSRParallelMetricsMatchSerial(t *testing.T) {
	for _, tc := range csrGoldens() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			g := tc.build()
			if d, dp := g.Diameter(), g.DiameterParallel(); d != dp {
				t.Errorf("DiameterParallel = %d, serial = %d", dp, d)
			}
			if a, ap := g.AverageDistance(), g.AverageDistanceParallel(); a != ap {
				t.Errorf("AverageDistanceParallel = %v, serial = %v", ap, a)
			}
		})
	}
}
