package ipg

import (
	"math/rand"
	"testing"

	"ipg/internal/graph"
	"ipg/internal/nucleus"
	"ipg/internal/superipg"
	"ipg/internal/topo"
	"ipg/internal/topology"
)

// csrGolden pins the metrics of every materialized family to values
// captured with the pre-CSR per-row adjacency representation.  The CSR
// arena sorts each row ascending exactly as the old representation did,
// so every metric — including the seeded greedy bisection search, which
// is sensitive to neighbor iteration order — must reproduce bit-identical
// values.  A mismatch here means the representation changed observable
// behavior, not just layout.
type csrGolden struct {
	name         string
	build        func() *graph.Graph
	n, m         int
	minDeg       int
	maxDeg       int
	diameter     int
	avgDistance  float64
	bisectionCut int
	avgDegree    float64
}

func csrGoldens() []csrGolden {
	q2 := func() *nucleus.Nucleus { return nucleus.Hypercube(2) }
	return []csrGolden{
		{
			name:  "HSN(3,Q2)",
			build: func() *graph.Graph { return superipg.HSN(3, q2()).MustBuild().Undirected() },
			n:     64, m: 112, minDeg: 2, maxDeg: 4, diameter: 8,
			avgDistance: 3.57421875, bisectionCut: 18, avgDegree: 3.5,
		},
		{
			name:  "ring-CN(3,Q2)",
			build: func() *graph.Graph { return superipg.RingCN(3, q2()).MustBuild().Undirected() },
			n:     64, m: 124, minDeg: 2, maxDeg: 4, diameter: 8,
			avgDistance: 3.599609375, bisectionCut: 24, avgDegree: 3.875,
		},
		{
			name:  "complete-CN(3,Q2)",
			build: func() *graph.Graph { return superipg.CompleteCN(3, q2()).MustBuild().Undirected() },
			n:     64, m: 124, minDeg: 2, maxDeg: 4, diameter: 8,
			avgDistance: 3.599609375, bisectionCut: 24, avgDegree: 3.875,
		},
		{
			name:  "SFN(3,Q2)",
			build: func() *graph.Graph { return superipg.SFN(3, q2()).MustBuild().Undirected() },
			n:     64, m: 112, minDeg: 2, maxDeg: 4, diameter: 8,
			avgDistance: 3.57421875, bisectionCut: 18, avgDegree: 3.5,
		},
		{
			name:  "Q6",
			build: func() *graph.Graph { return topology.NewHypercube(6).G },
			n:     64, m: 192, minDeg: 6, maxDeg: 6, diameter: 6,
			avgDistance: 3, bisectionCut: 52, avgDegree: 6,
		},
		{
			name:  "8-ary 2-cube",
			build: func() *graph.Graph { return topology.NewTorus(8, 2).G },
			n:     64, m: 128, minDeg: 4, maxDeg: 4, diameter: 8,
			avgDistance: 4, bisectionCut: 20, avgDegree: 4,
		},
		{
			name:  "CCC(3)",
			build: func() *graph.Graph { return topology.NewCCC(3).G },
			n:     24, m: 36, minDeg: 3, maxDeg: 3, diameter: 6,
			avgDistance: 3.0833333333333335, bisectionCut: 6, avgDegree: 3,
		},
		{
			name:  "WBF(3)",
			build: func() *graph.Graph { return topology.NewButterfly(3).G },
			n:     24, m: 48, minDeg: 4, maxDeg: 4, diameter: 4,
			avgDistance: 2.2916666666666665, bisectionCut: 8, avgDegree: 4,
		},
	}
}

// TestCSREquivalenceGoldens checks the CSR-backed metrics against the
// pre-refactor goldens for all eight families.
func TestCSREquivalenceGoldens(t *testing.T) {
	for _, tc := range csrGoldens() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			g := tc.build()
			if g.N() != tc.n {
				t.Errorf("N = %d, want %d", g.N(), tc.n)
			}
			if g.M() != tc.m {
				t.Errorf("M = %d, want %d", g.M(), tc.m)
			}
			minDeg, maxDeg, avgDeg := g.DegreeStats()
			if minDeg != tc.minDeg || maxDeg != tc.maxDeg {
				t.Errorf("degree range [%d,%d], want [%d,%d]", minDeg, maxDeg, tc.minDeg, tc.maxDeg)
			}
			if avgDeg != tc.avgDegree {
				t.Errorf("avg degree = %v, want %v", avgDeg, tc.avgDegree)
			}
			if d := g.Diameter(); d != tc.diameter {
				t.Errorf("diameter = %d, want %d", d, tc.diameter)
			}
			if a := g.AverageDistance(); a != tc.avgDistance {
				t.Errorf("avg distance = %v, want %v", a, tc.avgDistance)
			}
			// The greedy bisection search consumes the rand stream in
			// neighbor-iteration order: the cut value is bit-identical
			// only if the CSR rows match the old sorted rows exactly.
			_, cut := g.BestBisection(rand.New(rand.NewSource(7)), 3, 50)
			if cut != tc.bisectionCut {
				t.Errorf("BestBisection cut = %d, want %d", cut, tc.bisectionCut)
			}
		})
	}
}

// TestMSBFSMatchesScalarGoldens runs the bit-parallel multi-source BFS
// over every source of all eight golden families and checks each lane's
// eccentricity, distance sum, and full distance vector against the scalar
// kernel, bit for bit.  Together with the random-graph property test in
// internal/topo this pins the batched kernel to the scalar contract on
// the exact graphs the reproduction serves.
func TestMSBFSMatchesScalarGoldens(t *testing.T) {
	for _, tc := range csrGoldens() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			c := tc.build().CSR()
			n := c.N()
			s := topo.NewMSBFSScratch(n)
			scalarDist := make([]int32, n)
			queue := make([]int32, 0, n)
			ecc := make([]int32, 64)
			sum := make([]int64, 64)
			dist := make([]int32, 64*n)
			srcs := make([]int32, 0, 64)
			for lo := 0; lo < n; lo += 64 {
				hi := lo + 64
				if hi > n {
					hi = n
				}
				srcs = srcs[:0]
				for v := lo; v < hi; v++ {
					srcs = append(srcs, int32(v))
				}
				c.MSBFSInto(srcs, s, ecc, sum, dist)
				for i, src := range srcs {
					wantEcc, wantSum := c.BFSInto(int(src), scalarDist, queue)
					if ecc[i] != wantEcc || sum[i] != wantSum {
						t.Fatalf("src %d: msbfs ecc=%d sum=%d, scalar ecc=%d sum=%d",
							src, ecc[i], sum[i], wantEcc, wantSum)
					}
					for v := 0; v < n; v++ {
						if dist[i*n+v] != scalarDist[v] {
							t.Fatalf("src %d: dist[%d] = %d, scalar %d", src, v, dist[i*n+v], scalarDist[v])
						}
					}
				}
			}
		})
	}
}

// TestCSRParallelMetricsMatchSerial checks that the worker-pool metric
// paths see the same finalized CSR as the serial paths.
func TestCSRParallelMetricsMatchSerial(t *testing.T) {
	for _, tc := range csrGoldens() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			g := tc.build()
			if d, dp := g.Diameter(), g.DiameterParallel(); d != dp {
				t.Errorf("DiameterParallel = %d, serial = %d", dp, d)
			}
			if a, ap := g.AverageDistance(), g.AverageDistanceParallel(); a != ap {
				t.Errorf("AverageDistanceParallel = %v, serial = %v", ap, a)
			}
		})
	}
}
