module ipg

go 1.22
